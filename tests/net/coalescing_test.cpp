// Same-tick delivery coalescing (Segment::enqueue_delivery): batched
// deliveries must be observationally identical to the one-event-per-frame
// reference — same arrival order, same arrival times — while actually
// folding same-tick frames into fewer engine events. The exactness guard
// (engine sequence number untouched since the batch armed) is what makes the
// equivalence provable; these tests pin both the equivalence and the guard.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "net/frame.h"
#include "net/network.h"
#include "net/nic.h"
#include "net/segment.h"
#include "sim/simulator.h"

namespace net {
namespace {

/// RAII for the process-wide coalescing toggle: tests must leave it on.
struct CoalescingOff {
  CoalescingOff() { Segment::set_delivery_coalescing(false); }
  ~CoalescingOff() { Segment::set_delivery_coalescing(true); }
};

struct Arrival {
  sim::Time t;
  std::uint64_t id;
  bool operator==(const Arrival&) const = default;
};

struct Recorder final : Attachment {
  sim::Simulator* s;
  std::vector<Arrival> log;
  explicit Recorder(sim::Simulator& sim) : s(&sim) {}
  void on_frame(const Frame& f) override { log.push_back({s->now(), f.id}); }
};

Frame make_frame(std::uint64_t id) {
  Frame f;
  f.dst = kBroadcast;
  f.payload = Payload::zeros(64);
  f.id = id;
  return f;
}

/// Three same-tick deliveries plus a later straggler, recorded end to end.
std::pair<std::vector<Arrival>, std::uint64_t> run_fan_in() {
  sim::Simulator s;
  Segment seg(s, WireParams{});
  Recorder rx(s);
  seg.attach(rx);
  seg.enqueue_delivery(sim::usec(10), make_frame(1), nullptr);
  seg.enqueue_delivery(sim::usec(10), make_frame(2), nullptr);
  seg.enqueue_delivery(sim::usec(10), make_frame(3), nullptr);
  seg.enqueue_delivery(sim::usec(50), make_frame(4), nullptr);
  s.run();
  return {rx.log, s.events_executed()};
}

TEST(DeliveryCoalescing, BatchedRunMatchesUnbatchedReferenceExactly) {
  auto [batched, batched_events] = run_fan_in();
  std::vector<Arrival> reference;
  std::uint64_t reference_events = 0;
  {
    CoalescingOff off;
    std::tie(reference, reference_events) = run_fan_in();
  }
  // Identical observable history: same frames, same order, same times.
  ASSERT_EQ(batched.size(), 4u);
  EXPECT_EQ(batched, reference);
  EXPECT_TRUE(batched[0].id == 1 && batched[1].id == 2 && batched[2].id == 3);
  // ...from strictly fewer engine events: the three same-tick frames entered
  // transmit() from one dispatched batch instead of three.
  EXPECT_LT(batched_events, reference_events);
  EXPECT_EQ(reference_events - batched_events, 2u);
}

TEST(DeliveryCoalescing, InterveningScheduleBreaksTheBatch) {
  // An unrelated event scheduled between two same-tick deliveries moves the
  // engine's sequence counter, so the second frame must NOT fold into the
  // armed batch — it takes its own event, with exactly the sequence number
  // the unbatched reference would have drawn, and the unrelated event still
  // runs between the two transmits just as it would have.
  sim::Simulator s;
  Segment seg(s, WireParams{});
  Recorder rx(s);
  seg.attach(rx);
  std::vector<int> marks;
  seg.enqueue_delivery(sim::usec(10), make_frame(1), nullptr);
  s.at(sim::usec(10), [&marks] { marks.push_back(99); });
  seg.enqueue_delivery(sim::usec(10), make_frame(2), nullptr);
  const std::size_t queued = s.pending();
  EXPECT_EQ(queued, 3u);  // batch event + marker + broken-out frame event
  s.run();
  ASSERT_EQ(rx.log.size(), 2u);
  EXPECT_EQ(rx.log[0].id, 1u);
  EXPECT_EQ(rx.log[1].id, 2u);
  EXPECT_EQ(marks.size(), 1u);
}

TEST(DeliveryCoalescing, SwitchFanInToOneNicArrivesInTimeSeqOrder) {
  // End to end through the topology: two senders on different segments each
  // unicast to the same far node in the same tick; the switch forwards both
  // with identical latency, so they reach the destination segment at the
  // same timestamp and coalesce. Arrival order at the NIC must match the
  // unbatched reference run frame for frame.
  const auto run = [] {
    sim::Simulator s;
    Network n(s);
    for (int i = 0; i < 17; ++i) n.add_node();  // 0-7 | 8-15 | 16
    std::vector<Arrival> log;
    n.nic(16).set_rx_handler(
        [&log, &s](const Frame& f) { log.push_back({s.now(), f.id}); });
    // Same tick on two ingress segments: both forwarded copies land on
    // segment 2 at now + forward latency.
    Frame a = make_frame(0xA);
    a.dst = Network::mac_of(16);
    Frame b = make_frame(0xB);
    b.dst = Network::mac_of(16);
    n.nic(0).send(std::move(a));
    n.nic(8).send(std::move(b));
    s.run();
    return log;
  };
  const std::vector<Arrival> batched = run();
  std::vector<Arrival> reference;
  {
    CoalescingOff off;
    reference = run();
  }
  ASSERT_EQ(batched.size(), 2u);
  EXPECT_EQ(batched, reference);
}

}  // namespace
}  // namespace net
