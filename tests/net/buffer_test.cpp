#include "net/buffer.h"

#include <gtest/gtest.h>

#include "sim/require.h"

namespace net {
namespace {

TEST(Payload, DefaultIsEmpty) {
  Payload p;
  EXPECT_EQ(p.size(), 0u);
  EXPECT_TRUE(p.empty());
}

TEST(Payload, ZerosHasRequestedSize) {
  Payload p = Payload::zeros(4096);
  EXPECT_EQ(p.size(), 4096u);
  for (std::size_t i = 0; i < p.size(); i += 512) EXPECT_EQ(p.data()[i], 0);
}

TEST(Payload, SliceIsZeroCopyView) {
  Writer w;
  for (int i = 0; i < 100; ++i) w.u8(static_cast<std::uint8_t>(i));
  Payload p = w.take();
  Payload mid = p.slice(10, 20);
  EXPECT_EQ(mid.size(), 20u);
  EXPECT_EQ(mid.data()[0], 10);
  EXPECT_EQ(mid.data()[19], 29);
  // Slicing a slice composes offsets.
  Payload inner = mid.slice(5, 5);
  EXPECT_EQ(inner.data()[0], 15);
}

TEST(Payload, SliceOutOfRangeThrows) {
  Payload p = Payload::zeros(10);
  EXPECT_THROW((void)p.slice(5, 6), sim::SimError);
  EXPECT_NO_THROW((void)p.slice(5, 5));
  EXPECT_NO_THROW((void)p.slice(10, 0));
}

TEST(Payload, ContentEquals) {
  Writer a;
  a.u32(0xDEADBEEF);
  Writer b;
  b.u32(0xDEADBEEF);
  Writer c;
  c.u32(0xDEADBEE0);
  Payload pa = a.take();
  EXPECT_TRUE(pa.content_equals(b.take()));
  EXPECT_FALSE(pa.content_equals(c.take()));
  EXPECT_FALSE(pa.content_equals(Payload::zeros(4)));
}

TEST(WriterReader, RoundTripsAllTypes) {
  Writer w;
  w.u8(0xAB)
      .u16(0x1234)
      .u32(0xDEADBEEF)
      .u64(0x0123456789ABCDEFULL)
      .i32(-42)
      .i64(-1'000'000'000'000LL)
      .f64(3.14159)
      .str("amoeba");
  Reader r(w.take());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1'000'000'000'000LL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "amoeba");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WriterReader, BigEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  Payload p = w.take();
  EXPECT_EQ(p.data()[0], 0x01);
  EXPECT_EQ(p.data()[3], 0x04);
}

TEST(WriterReader, NestedPayloads) {
  Writer inner;
  inner.u32(7).u32(8);
  Payload body = inner.take();
  Writer outer;
  outer.u16(0xCAFE).payload(body);
  Reader r(outer.take());
  EXPECT_EQ(r.u16(), 0xCAFE);
  Payload extracted = r.raw(8);
  Reader ir(extracted);
  EXPECT_EQ(ir.u32(), 7u);
  EXPECT_EQ(ir.u32(), 8u);
}

TEST(WriterReader, RestConsumesRemainder) {
  Writer w;
  w.u8(1).zeros(100);
  Reader r(w.take());
  (void)r.u8();
  Payload rest = r.rest();
  EXPECT_EQ(rest.size(), 100u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WriterReader, UnderrunThrows) {
  Writer w;
  w.u16(1);
  Reader r(w.take());
  EXPECT_THROW((void)r.u32(), sim::SimError);
}

TEST(Writer, TakeResets) {
  Writer w;
  w.u32(1);
  (void)w.take();
  EXPECT_EQ(w.size(), 0u);
  w.u8(2);
  Payload p = w.take();
  EXPECT_EQ(p.size(), 1u);
}

}  // namespace
}  // namespace net
