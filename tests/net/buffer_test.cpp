#include "net/buffer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/require.h"

namespace net {
namespace {

TEST(Payload, DefaultIsEmpty) {
  Payload p;
  EXPECT_EQ(p.size(), 0u);
  EXPECT_TRUE(p.empty());
}

TEST(Payload, ZerosHasRequestedSize) {
  Payload p = Payload::zeros(4096);
  EXPECT_EQ(p.size(), 4096u);
  for (std::size_t i = 0; i < p.size(); i += 512) EXPECT_EQ(p.data()[i], 0);
}

TEST(Payload, SliceIsZeroCopyView) {
  Writer w;
  for (int i = 0; i < 100; ++i) w.u8(static_cast<std::uint8_t>(i));
  Payload p = w.take();
  Payload mid = p.slice(10, 20);
  EXPECT_EQ(mid.size(), 20u);
  EXPECT_EQ(mid.data()[0], 10);
  EXPECT_EQ(mid.data()[19], 29);
  // Slicing a slice composes offsets.
  Payload inner = mid.slice(5, 5);
  EXPECT_EQ(inner.data()[0], 15);
}

TEST(Payload, SliceOutOfRangeThrows) {
  Payload p = Payload::zeros(10);
  EXPECT_THROW((void)p.slice(5, 6), sim::SimError);
  EXPECT_NO_THROW((void)p.slice(5, 5));
  EXPECT_NO_THROW((void)p.slice(10, 0));
}

TEST(Payload, ContentEquals) {
  Writer a;
  a.u32(0xDEADBEEF);
  Writer b;
  b.u32(0xDEADBEEF);
  Writer c;
  c.u32(0xDEADBEE0);
  Payload pa = a.take();
  EXPECT_TRUE(pa.content_equals(b.take()));
  EXPECT_FALSE(pa.content_equals(c.take()));
  EXPECT_FALSE(pa.content_equals(Payload::zeros(4)));
}

TEST(WriterReader, RoundTripsAllTypes) {
  Writer w;
  w.u8(0xAB)
      .u16(0x1234)
      .u32(0xDEADBEEF)
      .u64(0x0123456789ABCDEFULL)
      .i32(-42)
      .i64(-1'000'000'000'000LL)
      .f64(3.14159)
      .str("amoeba");
  Reader r(w.take());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1'000'000'000'000LL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "amoeba");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WriterReader, BigEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  Payload p = w.take();
  EXPECT_EQ(p.data()[0], 0x01);
  EXPECT_EQ(p.data()[3], 0x04);
}

TEST(WriterReader, NestedPayloads) {
  Writer inner;
  inner.u32(7).u32(8);
  Payload body = inner.take();
  Writer outer;
  outer.u16(0xCAFE).payload(body);
  Reader r(outer.take());
  EXPECT_EQ(r.u16(), 0xCAFE);
  Payload extracted = r.raw(8);
  Reader ir(extracted);
  EXPECT_EQ(ir.u32(), 7u);
  EXPECT_EQ(ir.u32(), 8u);
}

TEST(WriterReader, RestConsumesRemainder) {
  Writer w;
  w.u8(1).zeros(100);
  Reader r(w.take());
  (void)r.u8();
  Payload rest = r.rest();
  EXPECT_EQ(rest.size(), 100u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WriterReader, UnderrunThrows) {
  Writer w;
  w.u16(1);
  Reader r(w.take());
  EXPECT_THROW((void)r.u32(), sim::SimError);
}

TEST(Writer, TakeResets) {
  Writer w;
  w.u32(1);
  (void)w.take();
  EXPECT_EQ(w.size(), 0u);
  w.u8(2);
  Payload p = w.take();
  EXPECT_EQ(p.size(), 1u);
}

TEST(Payload, SliceNearSizeMaxDoesNotOverflow) {
  // Regression: `offset + length` used to wrap around SIZE_MAX and pass the
  // bounds check, yielding a "valid" slice far beyond the payload.
  Payload p = Payload::zeros(10);
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  EXPECT_THROW((void)p.slice(5, kMax - 2), sim::SimError);
  EXPECT_THROW((void)p.slice(kMax, 1), sim::SimError);
  EXPECT_THROW((void)p.slice(kMax, kMax), sim::SimError);
  EXPECT_THROW((void)p.slice(0, kMax), sim::SimError);
  EXPECT_NO_THROW((void)p.slice(0, 10));
}

TEST(Payload, ZerosIsAllocationFreeAtAnySmallOrBulkSize) {
  const PayloadAllocStats before = payload_alloc_stats();
  Payload small = Payload::zeros(8);
  Payload bulk = Payload::zeros(1 << 20);
  Payload multi = Payload::zeros(2 << 20);  // spans two zero-page chunks
  const PayloadAllocStats after = payload_alloc_stats();
  EXPECT_EQ(after.count, before.count);
  EXPECT_EQ(small.size(), 8u);
  EXPECT_EQ(bulk.size(), 1u << 20);
  EXPECT_EQ(multi.size(), 2u << 20);
  EXPECT_EQ(bulk.byte_at(0), 0);
  EXPECT_EQ(multi.byte_at((2 << 20) - 1), 0);
  // Slicing bulk zeros is also free.
  const PayloadAllocStats b2 = payload_alloc_stats();
  Payload frag = bulk.slice(12345, 1468);
  EXPECT_EQ(payload_alloc_stats().count, b2.count);
  EXPECT_EQ(frag.size(), 1468u);
}

TEST(Payload, SmallVectorsAreStoredInline) {
  std::vector<std::uint8_t> v(Payload::kInlineBytes);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<std::uint8_t>(i);
  const PayloadAllocStats before = payload_alloc_stats();
  Payload p(std::move(v));
  EXPECT_EQ(payload_alloc_stats().count, before.count);
  EXPECT_TRUE(p.contiguous());
  EXPECT_EQ(p.size(), Payload::kInlineBytes);
  EXPECT_EQ(p.byte_at(63), 63);
  // Copies and slices of an inline payload are self-contained values.
  Payload q = p.slice(10, 20);
  p = Payload();
  EXPECT_EQ(q.byte_at(0), 10);
}

TEST(Payload, CordGathersChunksWithoutCopying) {
  std::vector<std::uint8_t> big(300);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<std::uint8_t>(i & 0xFF);
  Payload body(std::move(big));

  Writer w;
  w.u16(0xCAFE);
  w.payload(body);   // > 64 B: spliced by reference
  w.u16(0xBEEF);
  Payload frame = w.take();
  EXPECT_EQ(frame.size(), 304u);
  EXPECT_FALSE(frame.contiguous());
  EXPECT_GE(frame.chunk_count(), 2u);

  // Random access and bulk copies work without flattening.
  EXPECT_EQ(frame.byte_at(0), 0xCA);
  EXPECT_EQ(frame.byte_at(2), 0);
  EXPECT_EQ(frame.byte_at(2 + 299), 299 & 0xFF);
  EXPECT_EQ(frame.byte_at(303), 0xEF);
  std::uint8_t out[8] = {};
  frame.copy_out(300, 4, out);
  EXPECT_EQ(out[0], static_cast<std::uint8_t>(298 & 0xFF));
  EXPECT_EQ(out[2], 0xBE);

  // for_each_chunk walks the gather list in order and covers every byte.
  std::vector<std::uint8_t> gathered;
  frame.for_each_chunk([&](const std::uint8_t* d, std::size_t n) {
    gathered.insert(gathered.end(), d, d + n);
  });
  ASSERT_EQ(gathered.size(), frame.size());
  for (std::size_t i = 0; i < gathered.size(); ++i)
    EXPECT_EQ(gathered[i], frame.byte_at(i)) << i;

  // data() flattens lazily and agrees with the chunked view.
  const std::uint8_t* flat = frame.data();
  for (std::size_t i = 0; i < frame.size(); ++i) EXPECT_EQ(flat[i], gathered[i]);
  EXPECT_TRUE(frame.contiguous());  // cached flat form
}

TEST(Payload, SliceAcrossChunkBoundaries) {
  Writer w;
  w.zeros(10);
  std::vector<std::uint8_t> big(100, 0xAA);
  w.payload(Payload(std::move(big)));
  w.u32(0x01020304);
  Payload p = w.take();
  Payload mid = p.slice(8, 100);  // 2 zeros + 98 of 0xAA
  EXPECT_EQ(mid.size(), 100u);
  EXPECT_EQ(mid.byte_at(0), 0);
  EXPECT_EQ(mid.byte_at(2), 0xAA);
  EXPECT_EQ(mid.byte_at(99), 0xAA);
  Payload tail = p.slice(108, 6);  // last 2 of 0xAA + the u32
  EXPECT_EQ(tail.byte_at(2), 0x01);
  EXPECT_EQ(tail.byte_at(5), 0x04);
  // Equality across different chunkings.
  EXPECT_TRUE(p.slice(10, 100).content_equals(
      Payload(std::vector<std::uint8_t>(100, 0xAA))));
}

TEST(Reader, ScalarsThatStraddleChunksAreStaged) {
  std::vector<std::uint8_t> a(100);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<std::uint8_t>(i);
  Writer w;
  w.payload(Payload(std::move(a)));
  w.u32(0xDEADBEEF);
  Reader r(w.take());
  Payload head = r.raw(98);
  EXPECT_EQ(head.size(), 98u);
  // This u32 spans the ref chunk boundary (bytes 98..101).
  const std::uint32_t v = r.u32();
  EXPECT_EQ(v, 0x6263DEADu);  // 98, 99, then the first two header bytes
  EXPECT_EQ(r.u16(), 0xBEEFu);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Writer, SteadyStateLoopIsAllocationFree) {
  Writer w;
  Payload bulk = Payload::zeros(1 << 20);
  auto build = [&] {
    w.u32(0xABCD0123);
    w.zeros(28);                      // pad to a 32-byte header
    w.payload(bulk.slice(4096, 1468));  // one fragment of bulk data
    return w.take();
  };
  // Warm-up: let the scratch buffer, ref list and arena pool reach capacity
  // (the arena rotates every ~2048 frames; warm two full blocks).
  for (int i = 0; i < 5000; ++i) (void)build();
  const PayloadAllocStats before = payload_alloc_stats();
  for (int i = 0; i < 5000; ++i) {
    Payload frame = build();
    EXPECT_EQ(frame.size(), 32u + 1468u);
  }
  EXPECT_EQ(payload_alloc_stats().count, before.count);
}

TEST(BufferPool, RecyclesBuffersOnceUnreferenced) {
  BufferPool pool;
  std::shared_ptr<std::vector<std::uint8_t>> first = pool.acquire(1024);
  const void* storage = first->data();
  first.reset();  // no frame references it any more
  const PayloadAllocStats before = payload_alloc_stats();
  std::shared_ptr<std::vector<std::uint8_t>> again = pool.acquire(1000);
  EXPECT_EQ(payload_alloc_stats().count, before.count);
  EXPECT_EQ(static_cast<const void*>(again->data()), storage);
  EXPECT_EQ(again->size(), 1000u);

  // A buffer still referenced by a payload is NOT recycled.
  Payload held = Payload::from_shared(again, again->data(), again->size());
  std::shared_ptr<std::vector<std::uint8_t>> other = pool.acquire(1024);
  EXPECT_NE(static_cast<const void*>(other->data()), storage);
  EXPECT_EQ(held.size(), 1000u);
}

TEST(Payload, FromSharedKeepsOwnerAlive) {
  auto buf = std::make_shared<std::vector<std::uint8_t>>(128, 0x5A);
  Payload p = Payload::from_shared(buf, buf->data(), buf->size());
  std::weak_ptr<std::vector<std::uint8_t>> watch = buf;
  buf.reset();
  EXPECT_FALSE(watch.expired());
  EXPECT_EQ(p.byte_at(127), 0x5A);
  p = Payload();
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace net
