// Partitioned topology construction: round-robin segment-to-engine mapping,
// topology-derived lookahead, and cross-partition frame delivery through the
// switch's mailbox path.
#include <gtest/gtest.h>

#include <vector>

#include "net/frame.h"
#include "net/network.h"
#include "net/nic.h"
#include "sim/partition.h"
#include "sim/simulator.h"

namespace net {
namespace {

Frame make_frame(MacAddr dst, std::size_t bytes, std::uint64_t id = 0) {
  Frame f;
  f.dst = dst;
  f.payload = Payload::zeros(bytes);
  f.id = id;
  return f;
}

TEST(PartitionNet, SegmentsMapRoundRobinOntoEngines) {
  sim::PartitionedSimulator ps(
      sim::PartitionedSimulator::Config{/*partitions=*/2, /*threads=*/1, 42});
  NetworkConfig cfg;
  cfg.nodes_per_segment = 2;
  Network n(ps, cfg);
  for (int i = 0; i < 8; ++i) n.add_node();  // 4 segments of 2
  ASSERT_EQ(n.segment_count(), 4u);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(n.segment(s).partition(), s % 2) << "segment " << s;
    EXPECT_EQ(&n.segment(s).simulator(), &ps.engine(s % 2)) << "segment " << s;
  }
  // Nodes inherit their home segment's partition and engine.
  for (NodeId id = 0; id < 8; ++id) {
    const unsigned p = (id / 2) % 2;
    EXPECT_EQ(n.partition_of(id), p) << "node " << id;
    EXPECT_EQ(n.nic(id).partition(), p) << "node " << id;
    EXPECT_EQ(&n.node_simulator(id), &ps.engine(p)) << "node " << id;
  }
}

TEST(PartitionNet, LookaheadIsMinCrossPartitionLatencyFromTheTopology) {
  sim::PartitionedSimulator ps(
      sim::PartitionedSimulator::Config{/*partitions=*/2, /*threads=*/1, 42});
  NetworkConfig cfg;
  cfg.nodes_per_segment = 2;
  cfg.switch_forward_latency = sim::usec(25);
  Network n(ps, cfg);
  // One segment: nothing crosses a partition boundary yet.
  n.add_node();
  n.add_node();
  EXPECT_EQ(n.cross_partition_lookahead(), sim::Simulator::kNever);
  // A second segment lands on partition 1: the minimum cross-partition path
  // is one hop through the store-and-forward switch.
  n.add_node();
  EXPECT_EQ(n.cross_partition_lookahead(), sim::usec(25));
  EXPECT_EQ(ps.lookahead(), sim::usec(25));
}

TEST(PartitionNet, SinglePartitionTopologyNeverCrosses) {
  sim::PartitionedSimulator ps(
      sim::PartitionedSimulator::Config{/*partitions=*/1, /*threads=*/1, 42});
  NetworkConfig cfg;
  cfg.nodes_per_segment = 2;
  Network n(ps, cfg);
  for (int i = 0; i < 6; ++i) n.add_node();
  EXPECT_EQ(n.cross_partition_lookahead(), sim::Simulator::kNever);
}

TEST(PartitionNet, CrossPartitionFrameArrivesThroughTheMailbox) {
  sim::PartitionedSimulator ps(
      sim::PartitionedSimulator::Config{/*partitions=*/2, /*threads=*/1, 42});
  NetworkConfig cfg;
  cfg.nodes_per_segment = 2;
  Network n(ps, cfg);
  for (int i = 0; i < 4; ++i) n.add_node();  // seg0 (p0): 0,1; seg1 (p1): 2,3
  std::vector<std::uint64_t> got;
  n.nic(2).set_rx_handler([&](const Frame& f) { got.push_back(f.id); });
  n.nic(0).send(make_frame(Network::mac_of(2), 300, /*id=*/9));
  ps.run();
  EXPECT_EQ(got, (std::vector<std::uint64_t>{9}));
  EXPECT_EQ(ps.cross_posts(), 1u);  // the forwarded copy crossed partitions
  EXPECT_GT(ps.windows(), 0u);
}

TEST(PartitionNet, SamePartitionForwardingSkipsTheMailbox) {
  // With 3 segments on 2 partitions, segments 0 and 2 share partition 0:
  // traffic between them is switch-forwarded but stays on one engine.
  sim::PartitionedSimulator ps(
      sim::PartitionedSimulator::Config{/*partitions=*/2, /*threads=*/1, 42});
  NetworkConfig cfg;
  cfg.nodes_per_segment = 2;
  Network n(ps, cfg);
  for (int i = 0; i < 6; ++i) n.add_node();
  int got = 0;
  n.nic(4).set_rx_handler([&](const Frame&) { ++got; });  // seg2, partition 0
  n.nic(0).send(make_frame(Network::mac_of(4), 100));     // seg0, partition 0
  ps.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(ps.cross_posts(), 0u);
}

}  // namespace
}  // namespace net
