// Behavioural equivalence tests: every Panda feature must work identically
// (up to timing) on the kernel-space and user-space bindings.
#include "panda/panda.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "amoeba/world.h"
#include "sim/co.h"

namespace panda {
namespace {

struct Fixture {
  explicit Fixture(Binding binding, std::size_t n, NodeId sequencer = 0) {
    world = std::make_unique<amoeba::World>();
    world->add_nodes(n);
    ClusterConfig cfg;
    cfg.binding = binding;
    for (NodeId i = 0; i < n; ++i) cfg.nodes.push_back(i);
    cfg.sequencer = sequencer;
    for (NodeId i = 0; i < n; ++i) {
      pandas.push_back(make_panda(world->kernel(i), cfg));
    }
  }

  void start_all() {
    for (auto& p : pandas) p->start();
  }

  std::unique_ptr<amoeba::World> world;
  std::vector<std::unique_ptr<Panda>> pandas;
};

class PandaBothBindings : public ::testing::TestWithParam<Binding> {};

TEST_P(PandaBothBindings, EchoRpc) {
  Fixture f(GetParam(), 2);
  f.pandas[1]->set_rpc_handler(
      [&f](Thread& upcall, RpcTicket t, net::Payload req) -> sim::Co<void> {
        net::Writer w;
        w.payload(req);
        w.u8(0x99);
        co_await f.pandas[1]->rpc_reply(upcall, t, w.take());
      });
  f.start_all();
  RpcReply reply;
  Thread& client = f.world->kernel(0).create_thread("client");
  sim::spawn([](Panda& p, Thread& self, RpcReply& out) -> sim::Co<void> {
    net::Writer w;
    w.u32(42);
    out = co_await p.rpc(self, 1, w.take());
  }(*f.pandas[0], client, reply));
  f.world->sim().run();
  ASSERT_EQ(reply.status, RpcStatus::kOk);
  net::Reader r(reply.reply);
  EXPECT_EQ(r.u32(), 42u);
  EXPECT_EQ(r.u8(), 0x99);
}

TEST_P(PandaBothBindings, ManySequentialRpcs) {
  Fixture f(GetParam(), 2);
  int served = 0;
  f.pandas[1]->set_rpc_handler(
      [&](Thread& upcall, RpcTicket t, net::Payload req) -> sim::Co<void> {
        ++served;
        co_await f.pandas[1]->rpc_reply(upcall, t, std::move(req));
      });
  f.start_all();
  int ok = 0;
  Thread& client = f.world->kernel(0).create_thread("client");
  sim::spawn([](Panda& p, Thread& self, int& done) -> sim::Co<void> {
    for (int i = 0; i < 20; ++i) {
      RpcReply r = co_await p.rpc(self, 1, net::Payload::zeros(100));
      if (r.status == RpcStatus::kOk) ++done;
    }
  }(*f.pandas[0], client, ok));
  f.world->sim().run();
  EXPECT_EQ(ok, 20);
  EXPECT_EQ(served, 20);
}

TEST_P(PandaBothBindings, LargeRpcPayloads) {
  Fixture f(GetParam(), 2);
  f.pandas[1]->set_rpc_handler(
      [&](Thread& upcall, RpcTicket t, net::Payload req) -> sim::Co<void> {
        co_await f.pandas[1]->rpc_reply(upcall, t, std::move(req));
      });
  f.start_all();
  RpcReply reply;
  Thread& client = f.world->kernel(0).create_thread("client");
  sim::spawn([](Panda& p, Thread& self, RpcReply& out) -> sim::Co<void> {
    net::Writer w;
    for (std::uint32_t i = 0; i < 2000; ++i) w.u32(i);  // 8000 bytes
    out = co_await p.rpc(self, 1, w.take());
  }(*f.pandas[0], client, reply));
  f.world->sim().run();
  ASSERT_EQ(reply.status, RpcStatus::kOk);
  ASSERT_EQ(reply.reply.size(), 8000u);
  net::Reader r(reply.reply);
  for (std::uint32_t i = 0; i < 2000; ++i) ASSERT_EQ(r.u32(), i);
}

TEST_P(PandaBothBindings, AsynchronousReplyFromAnotherThread) {
  // The guarded-operation shape: the upcall parks the ticket; a different
  // thread replies 5 ms later.
  Fixture f(GetParam(), 2);
  RpcTicket parked;
  bool have_parked = false;
  f.pandas[1]->set_rpc_handler(
      [&](Thread&, RpcTicket t, net::Payload) -> sim::Co<void> {
        parked = t;
        have_parked = true;
        co_return;  // no reply yet
      });
  f.start_all();
  // The "mutating" thread that eventually answers.
  f.pandas[1]->start_thread("mutator", [&](Thread& self) -> sim::Co<void> {
    while (!have_parked) co_await sim::delay(f.world->sim(), sim::msec(1));
    co_await sim::delay(f.world->sim(), sim::msec(5));
    net::Writer w;
    w.str("deferred");
    co_await f.pandas[1]->rpc_reply(self, parked, w.take());
  });
  RpcReply reply;
  Thread& client = f.world->kernel(0).create_thread("client");
  sim::spawn([](Panda& p, Thread& self, RpcReply& out) -> sim::Co<void> {
    out = co_await p.rpc(self, 1, net::Payload::zeros(8));
  }(*f.pandas[0], client, reply));
  f.world->sim().run();
  ASSERT_EQ(reply.status, RpcStatus::kOk);
  net::Reader r(reply.reply);
  EXPECT_EQ(r.str(), "deferred");
}

TEST_P(PandaBothBindings, GroupSendReachesAllInTotalOrder) {
  Fixture f(GetParam(), 4);
  std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> logs(4);
  for (NodeId n = 0; n < 4; ++n) {
    f.pandas[n]->set_group_handler(
        [&logs, n](Thread&, NodeId sender, std::uint32_t seqno,
                   net::Payload) -> sim::Co<void> {
          logs[n].emplace_back(sender, seqno);
          co_return;
        });
  }
  f.start_all();
  for (NodeId n = 0; n < 4; ++n) {
    Thread& t = f.world->kernel(n).create_thread("sender");
    sim::spawn([](Panda& p, Thread& self) -> sim::Co<void> {
      for (int i = 0; i < 5; ++i) {
        co_await p.group_send(self, net::Payload::zeros(64));
      }
    }(*f.pandas[n], t));
  }
  f.world->sim().run();
  ASSERT_EQ(logs[0].size(), 20u);
  for (NodeId n = 1; n < 4; ++n) {
    ASSERT_EQ(logs[n].size(), 20u) << "member " << n;
    EXPECT_EQ(logs[n], logs[0]) << "member " << n << " diverged";
  }
}

TEST_P(PandaBothBindings, GroupLargeMessage) {
  Fixture f(GetParam(), 3);
  std::vector<std::size_t> sizes(3, 0);
  std::vector<net::Payload> bodies(3);
  for (NodeId n = 0; n < 3; ++n) {
    f.pandas[n]->set_group_handler(
        [&, n](Thread&, NodeId, std::uint32_t, net::Payload msg) -> sim::Co<void> {
          sizes[n] = msg.size();
          bodies[n] = std::move(msg);
          co_return;
        });
  }
  f.start_all();
  Thread& t = f.world->kernel(1).create_thread("sender");
  sim::spawn([](Panda& p, Thread& self) -> sim::Co<void> {
    net::Writer w;
    for (std::uint32_t i = 0; i < 2000; ++i) w.u32(i * 7);
    co_await p.group_send(self, w.take());
  }(*f.pandas[1], t));
  f.world->sim().run();
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_EQ(sizes[n], 8000u) << "member " << n;
    net::Reader r(bodies[n]);
    for (std::uint32_t i = 0; i < 2000; ++i) ASSERT_EQ(r.u32(), i * 7);
  }
}

TEST_P(PandaBothBindings, SequencerNodeCanSend) {
  Fixture f(GetParam(), 3, /*sequencer=*/0);
  std::vector<int> got(3, 0);
  for (NodeId n = 0; n < 3; ++n) {
    f.pandas[n]->set_group_handler(
        [&got, n](Thread&, NodeId, std::uint32_t, net::Payload) -> sim::Co<void> {
          ++got[n];
          co_return;
        });
  }
  f.start_all();
  Thread& t = f.world->kernel(0).create_thread("sender");
  sim::spawn([](Panda& p, Thread& self) -> sim::Co<void> {
    co_await p.group_send(self, net::Payload::zeros(32));
  }(*f.pandas[0], t));
  f.world->sim().run();
  EXPECT_EQ(got, (std::vector<int>{1, 1, 1}));
}

TEST_P(PandaBothBindings, RpcAndGroupInterleave) {
  Fixture f(GetParam(), 3);
  int group_msgs = 0;
  f.pandas[2]->set_rpc_handler(
      [&](Thread& upcall, RpcTicket t, net::Payload req) -> sim::Co<void> {
        co_await f.pandas[2]->rpc_reply(upcall, t, std::move(req));
      });
  for (NodeId n = 0; n < 3; ++n) {
    f.pandas[n]->set_group_handler(
        [&](Thread&, NodeId, std::uint32_t, net::Payload) -> sim::Co<void> {
          ++group_msgs;
          co_return;
        });
  }
  f.start_all();
  int rpc_ok = 0;
  Thread& t0 = f.world->kernel(0).create_thread("mixed");
  sim::spawn([](Panda& p, Thread& self, int& ok) -> sim::Co<void> {
    for (int i = 0; i < 5; ++i) {
      co_await p.group_send(self, net::Payload::zeros(40));
      RpcReply r = co_await p.rpc(self, 2, net::Payload::zeros(40));
      if (r.status == RpcStatus::kOk) ++ok;
    }
  }(*f.pandas[0], t0, rpc_ok));
  f.world->sim().run();
  EXPECT_EQ(rpc_ok, 5);
  EXPECT_EQ(group_msgs, 15);  // 5 messages x 3 members
}

INSTANTIATE_TEST_SUITE_P(Bindings, PandaBothBindings,
                         ::testing::Values(Binding::kKernelSpace,
                                           Binding::kUserSpace),
                         [](const ::testing::TestParamInfo<Binding>& info) {
                           return info.param == Binding::kKernelSpace
                                      ? "KernelSpace"
                                      : "UserSpace";
                         });

// --- Binding-specific behaviour --------------------------------------------

TEST(PandaUserSpace, RepliesArePiggybackedOnBackToBackCalls) {
  Fixture f(Binding::kUserSpace, 2);
  f.pandas[1]->set_rpc_handler(
      [&](Thread& upcall, RpcTicket t, net::Payload req) -> sim::Co<void> {
        co_await f.pandas[1]->rpc_reply(upcall, t, std::move(req));
      });
  f.start_all();
  Thread& client = f.world->kernel(0).create_thread("client");
  sim::spawn([](Panda& p, Thread& self) -> sim::Co<void> {
    for (int i = 0; i < 10; ++i) {
      (void)co_await p.rpc(self, 1, net::Payload::zeros(10));
    }
  }(*f.pandas[0], client));
  f.world->sim().run();
  // Can't reach into the concrete type without a downcast helper; assert via
  // the wire instead: back-to-back calls need no explicit ack traffic, so
  // total frames = 10 requests + 10 replies + locate overhead + 1 trailing
  // explicit ack for the last reply.
  const auto frames = f.world->network().segment(0).frames_carried();
  EXPECT_LE(frames, 10u + 10u + 4u + 1u);
}

TEST(PandaUserSpace, LatencyGapVersusKernelMatchesPaperDirection) {
  // §4.2: the user-space null RPC is ~0.3 ms slower than kernel-space.
  auto measure = [](Binding b) {
    Fixture f(b, 2);
    f.pandas[1]->set_rpc_handler(
        [&f](Thread& upcall, RpcTicket t, net::Payload req) -> sim::Co<void> {
          co_await f.pandas[1]->rpc_reply(upcall, t, std::move(req));
        });
    f.start_all();
    Thread& client = f.world->kernel(0).create_thread("client");
    sim::Time elapsed = 0;
    sim::spawn([](Panda& p, Thread& self, sim::Simulator& s,
                  sim::Time& out) -> sim::Co<void> {
      (void)co_await p.rpc(self, 1, net::Payload());  // warm routes
      const sim::Time t0 = s.now();
      (void)co_await p.rpc(self, 1, net::Payload());
      out = s.now() - t0;
    }(*f.pandas[0], client, f.world->sim(), elapsed));
    f.world->sim().run();
    return elapsed;
  };
  const sim::Time kernel = measure(Binding::kKernelSpace);
  const sim::Time user = measure(Binding::kUserSpace);
  EXPECT_GT(user, kernel);
  const sim::Time gap = user - kernel;
  EXPECT_GT(gap, sim::usec(150));
  EXPECT_LT(gap, sim::usec(600));
}

}  // namespace
}  // namespace panda
