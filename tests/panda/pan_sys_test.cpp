// Unit tests for the Panda user-space system layer: user-level
// fragmentation, daemon demultiplexing, and the sequencer routing path.
#include "panda/pan_sys.h"

#include <gtest/gtest.h>

#include <vector>

#include "amoeba/world.h"
#include "sim/co.h"

namespace panda {
namespace {

struct SysFixture : ::testing::Test {
  SysFixture() {
    world.add_nodes(3);
    for (amoeba::NodeId i = 0; i < 3; ++i) {
      sys.push_back(std::make_unique<PanSys>(world.kernel(i)));
    }
  }
  void start_all() {
    for (auto& s : sys) s->start();
  }
  amoeba::World world;
  std::vector<std::unique_ptr<PanSys>> sys;
};

TEST_F(SysFixture, UnicastDeliversToTheRightModule) {
  int rpc_got = 0;
  int group_got = 0;
  sys[1]->register_handler(PanSys::Module::kRpc, [&](SysMsg) -> sim::Co<void> {
    ++rpc_got;
    co_return;
  });
  sys[1]->register_handler(PanSys::Module::kGroup, [&](SysMsg) -> sim::Co<void> {
    ++group_got;
    co_return;
  });
  start_all();
  world.kernel(0).start_thread("t", [&](Thread& self) -> sim::Co<void> {
    co_await sys[0]->unicast(self, 1, PanSys::Module::kRpc, net::Payload::zeros(10));
    co_await sys[0]->unicast(self, 1, PanSys::Module::kGroup, net::Payload::zeros(10));
  });
  world.sim().run();
  EXPECT_EQ(rpc_got, 1);
  EXPECT_EQ(group_got, 1);
}

TEST_F(SysFixture, LargeMessagesAreFragmentedAtUserLevel) {
  std::size_t got = 0;
  net::Payload received;
  sys[1]->register_handler(PanSys::Module::kRpc, [&](SysMsg m) -> sim::Co<void> {
    got = m.payload.size();
    received = std::move(m.payload);
    co_return;
  });
  start_all();
  net::Writer w;
  for (std::uint32_t i = 0; i < 2000; ++i) w.u32(i);
  net::Payload msg = w.take();  // 8000 B -> 6 pan fragments
  world.kernel(0).start_thread("t", [&](Thread& self) -> sim::Co<void> {
    co_await sys[0]->unicast(self, 1, PanSys::Module::kRpc, msg);
  });
  world.sim().run();
  ASSERT_EQ(got, 8000u);
  EXPECT_TRUE(received.content_equals(msg));
  EXPECT_EQ(sys[0]->fragments_sent(), 6u);
  EXPECT_EQ(sys[0]->messages_sent(), 1u);
}

TEST_F(SysFixture, MulticastReachesAllOtherProcesses) {
  int got = 0;
  for (int n : {0, 1, 2}) {
    sys[n]->register_handler(PanSys::Module::kGroup, [&](SysMsg) -> sim::Co<void> {
      ++got;
      co_return;
    });
  }
  start_all();
  world.kernel(0).start_thread("t", [&](Thread& self) -> sim::Co<void> {
    co_await sys[0]->multicast(self, PanSys::Module::kGroup,
                               net::Payload::zeros(100));
  });
  world.sim().run();
  EXPECT_EQ(got, 2);  // sender does not hear itself
}

TEST_F(SysFixture, SequencerModuleBypassesTheDaemon) {
  start_all();
  std::vector<std::size_t> seq_sizes;
  Thread& seq_thread =
      world.kernel(1).start_thread("seq", [&](Thread& self) -> sim::Co<void> {
        for (int i = 0; i < 2; ++i) {
          SysMsg m = co_await sys[1]->seq_receive(self);
          seq_sizes.push_back(m.payload.size());
        }
      });
  sys[1]->set_sequencer_thread(seq_thread);
  int daemon_got = 0;
  sys[1]->register_handler(PanSys::Module::kSequencer,
                           [&](SysMsg) -> sim::Co<void> {
                             ++daemon_got;
                             co_return;
                           });
  world.kernel(0).start_thread("t", [&](Thread& self) -> sim::Co<void> {
    co_await sys[0]->unicast_unit(self, 1, PanSys::Module::kSequencer,
                                  net::Payload::zeros(11));
    co_await sys[0]->unicast_unit(self, 1, PanSys::Module::kSequencer,
                                  net::Payload::zeros(22));
  });
  world.sim().run();
  EXPECT_EQ(daemon_got, 0);  // routed to the sequencer thread, not the daemon
  EXPECT_EQ(seq_sizes, (std::vector<std::size_t>{11, 22}));
}

TEST_F(SysFixture, InterleavedSendersReassembleIndependently) {
  std::vector<std::size_t> sizes;
  sys[2]->register_handler(PanSys::Module::kRpc, [&](SysMsg m) -> sim::Co<void> {
    sizes.push_back(m.payload.size());
    co_return;
  });
  start_all();
  for (amoeba::NodeId n : {0u, 1u}) {
    world.kernel(n).start_thread("t", [&, n](Thread& self) -> sim::Co<void> {
      co_await sys[n]->unicast(self, 2, PanSys::Module::kRpc,
                               net::Payload::zeros(3000 + n));
    });
  }
  world.sim().run();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0] + sizes[1], 6001u);
}

TEST_F(SysFixture, FragmentationLayerChargesAppearInLedger) {
  sys[1]->register_handler(PanSys::Module::kRpc,
                           [](SysMsg) -> sim::Co<void> { co_return; });
  start_all();
  world.kernel(0).start_thread("t", [&](Thread& self) -> sim::Co<void> {
    co_await sys[0]->unicast(self, 1, PanSys::Module::kRpc,
                             net::Payload::zeros(100));
  });
  world.sim().run();
  const auto& frag =
      world.kernel(0).ledger().get(sim::Mechanism::kFragmentationLayer);
  EXPECT_EQ(frag.count, 1u);
  EXPECT_EQ(frag.total, world.costs().user_fragmentation_layer);
}

}  // namespace
}  // namespace panda
