// Protocol-level property tests for the Panda bindings under adverse
// conditions: loss, duplicate storms, long-parked guarded operations,
// history pressure. Everything must stay exactly-once and totally ordered.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "amoeba/world.h"
#include "panda/panda.h"

namespace panda {
namespace {

struct Fixture {
  Fixture(Binding binding, std::size_t n, std::size_t history = 512) {
    world = std::make_unique<amoeba::World>();
    world->add_nodes(n);
    ClusterConfig cfg;
    cfg.binding = binding;
    for (NodeId i = 0; i < n; ++i) cfg.nodes.push_back(i);
    cfg.group_history = history;
    for (NodeId i = 0; i < n; ++i) {
      pandas.push_back(make_panda(world->kernel(i), cfg));
    }
  }
  void start_all() {
    for (auto& p : pandas) p->start();
  }
  std::unique_ptr<amoeba::World> world;
  std::vector<std::unique_ptr<Panda>> pandas;
};

class ProtocolsUnderLoss : public ::testing::TestWithParam<Binding> {};

TEST_P(ProtocolsUnderLoss, RpcIsExactlyOnceWithHeavyLoss) {
  Fixture f(GetParam(), 2);
  sim::Rng loss(99);
  f.world->network().segment(0).set_loss_hook(
      [&loss](const net::Frame&) { return loss.bernoulli(0.15); });
  int executions = 0;
  f.pandas[1]->set_rpc_handler(
      [&](Thread& upcall, RpcTicket t, net::Payload req) -> sim::Co<void> {
        ++executions;
        co_await f.pandas[1]->rpc_reply(upcall, t, std::move(req));
      });
  f.start_all();
  int ok = 0;
  Thread& client = f.world->kernel(0).create_thread("client");
  sim::spawn([](Panda& p, Thread& self, int& done) -> sim::Co<void> {
    for (int i = 0; i < 30; ++i) {
      RpcReply r = co_await p.rpc(self, 1, net::Payload::zeros(64));
      if (r.status == RpcStatus::kOk) ++done;
    }
  }(*f.pandas[0], client, ok));
  f.world->sim().run();
  EXPECT_EQ(ok, 30);
  EXPECT_EQ(executions, 30);  // retransmitted, but never double-executed
}

TEST_P(ProtocolsUnderLoss, GroupStaysTotallyOrderedWithLoss) {
  Fixture f(GetParam(), 4);
  sim::Rng loss(7);
  f.world->network().segment(0).set_loss_hook(
      [&loss](const net::Frame&) { return loss.bernoulli(0.08); });
  std::vector<std::vector<std::uint32_t>> logs(4);
  for (NodeId n = 0; n < 4; ++n) {
    f.pandas[n]->set_group_handler(
        [&logs, n](Thread&, NodeId, std::uint32_t seqno,
                   net::Payload) -> sim::Co<void> {
          logs[n].push_back(seqno);
          co_return;
        });
  }
  f.start_all();
  for (NodeId n = 0; n < 4; ++n) {
    Thread& t = f.world->kernel(n).create_thread("sender");
    sim::spawn([](Panda& p, Thread& self) -> sim::Co<void> {
      for (int i = 0; i < 8; ++i) {
        co_await p.group_send(self, net::Payload::zeros(64));
      }
    }(*f.pandas[n], t));
  }
  f.world->sim().run();
  ASSERT_EQ(logs[0].size(), 32u);
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_EQ(logs[n].size(), 32u) << "member " << n;
    EXPECT_EQ(logs[n], logs[0]) << "member " << n;
    for (std::size_t i = 0; i < logs[n].size(); ++i) {
      EXPECT_EQ(logs[n][i], i + 1);  // gapless
    }
  }
}

TEST_P(ProtocolsUnderLoss, LargeBBMessagesSurviveLoss) {
  Fixture f(GetParam(), 3);
  sim::Rng loss(5);
  f.world->network().segment(0).set_loss_hook(
      [&loss](const net::Frame&) { return loss.bernoulli(0.05); });
  std::vector<std::size_t> sizes;
  f.pandas[2]->set_group_handler(
      [&](Thread&, NodeId, std::uint32_t, net::Payload m) -> sim::Co<void> {
        sizes.push_back(m.size());
        co_return;
      });
  f.start_all();
  Thread& t = f.world->kernel(0).create_thread("sender");
  sim::spawn([](Panda& p, Thread& self) -> sim::Co<void> {
    for (int i = 0; i < 5; ++i) {
      co_await p.group_send(self, net::Payload::zeros(6000));
    }
  }(*f.pandas[0], t));
  f.world->sim().run();
  EXPECT_EQ(sizes, (std::vector<std::size_t>{6000, 6000, 6000, 6000, 6000}));
}

TEST_P(ProtocolsUnderLoss, GuardedOperationParkedBeyondRetryWindows) {
  // The keepalive must prevent the client from aborting a transaction whose
  // reply is legitimately seconds away.
  Fixture f(GetParam(), 2);
  RpcTicket parked;
  bool have_parked = false;
  f.pandas[1]->set_rpc_handler(
      [&](Thread&, RpcTicket t, net::Payload) -> sim::Co<void> {
        parked = t;
        have_parked = true;
        co_return;
      });
  f.start_all();
  f.pandas[1]->start_thread("late-replier", [&](Thread& self) -> sim::Co<void> {
    while (!have_parked) co_await sim::delay(f.world->sim(), sim::msec(5));
    co_await sim::delay(f.world->sim(), sim::sec(5));  // far past retry budget
    co_await f.pandas[1]->rpc_reply(self, parked, net::Payload::zeros(4));
  });
  RpcReply reply;
  Thread& client = f.world->kernel(0).create_thread("client");
  sim::spawn([](Panda& p, Thread& self, RpcReply& out) -> sim::Co<void> {
    out = co_await p.rpc(self, 1, net::Payload::zeros(4));
  }(*f.pandas[0], client, reply));
  f.world->sim().run();
  EXPECT_EQ(reply.status, RpcStatus::kOk);
  EXPECT_GT(f.world->sim().now(), sim::sec(5));
}

TEST_P(ProtocolsUnderLoss, TinyHistorySurvivesASaturatingStream) {
  Fixture f(GetParam(), 3, /*history=*/6);
  std::vector<std::uint32_t> seen;
  f.pandas[2]->set_group_handler(
      [&](Thread&, NodeId, std::uint32_t seqno, net::Payload) -> sim::Co<void> {
        seen.push_back(seqno);
        co_return;
      });
  f.start_all();
  int done = 0;
  for (NodeId n = 0; n < 3; ++n) {
    Thread& t = f.world->kernel(n).create_thread("sender");
    sim::spawn([](Panda& p, Thread& self, int& d) -> sim::Co<void> {
      for (int i = 0; i < 20; ++i) {
        co_await p.group_send(self, net::Payload::zeros(32));
      }
      ++d;
    }(*f.pandas[n], t, done));
  }
  f.world->sim().run();
  EXPECT_EQ(done, 3);
  ASSERT_EQ(seen.size(), 60u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

INSTANTIATE_TEST_SUITE_P(Bindings, ProtocolsUnderLoss,
                         ::testing::Values(Binding::kKernelSpace,
                                           Binding::kUserSpace),
                         [](const ::testing::TestParamInfo<Binding>& info) {
                           return info.param == Binding::kKernelSpace
                                      ? "KernelSpace"
                                      : "UserSpace";
                         });

}  // namespace
}  // namespace panda
