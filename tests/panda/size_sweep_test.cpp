// Parameterized size sweeps: payload integrity and latency monotonicity for
// RPC and group communication across fragmentation boundaries, on both
// bindings.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "amoeba/world.h"
#include "panda/panda.h"

namespace panda {
namespace {

net::Payload patterned(std::size_t n) {
  net::Writer w;
  for (std::size_t i = 0; i < n; ++i) {
    w.u8(static_cast<std::uint8_t>((i * 131) ^ (i >> 8)));
  }
  return w.take();
}

using SweepParam = std::tuple<Binding, std::size_t>;

class SizeSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SizeSweep, RpcRoundTripsPayloadBitExactly) {
  const auto [binding, size] = GetParam();
  amoeba::World world;
  world.add_nodes(2);
  ClusterConfig cfg;
  cfg.binding = binding;
  cfg.nodes = {0, 1};
  std::vector<std::unique_ptr<Panda>> pandas;
  for (NodeId i = 0; i < 2; ++i) pandas.push_back(make_panda(world.kernel(i), cfg));
  pandas[1]->set_rpc_handler(
      [&](Thread& upcall, RpcTicket t, net::Payload req) -> sim::Co<void> {
        co_await pandas[1]->rpc_reply(upcall, t, std::move(req));
      });
  for (auto& p : pandas) p->start();

  net::Payload sent = patterned(size);
  RpcReply reply;
  Thread& client = world.kernel(0).create_thread("client");
  sim::spawn([](Panda& p, Thread& self, net::Payload msg,
                RpcReply& out) -> sim::Co<void> {
    out = co_await p.rpc(self, 1, std::move(msg));
  }(*pandas[0], client, sent, reply));
  world.sim().run();
  ASSERT_EQ(reply.status, RpcStatus::kOk);
  EXPECT_TRUE(reply.reply.content_equals(sent)) << "size " << size;
}

TEST_P(SizeSweep, GroupDeliversPayloadBitExactlyToAllMembers) {
  const auto [binding, size] = GetParam();
  amoeba::World world;
  world.add_nodes(3);
  ClusterConfig cfg;
  cfg.binding = binding;
  cfg.nodes = {0, 1, 2};
  std::vector<std::unique_ptr<Panda>> pandas;
  std::vector<net::Payload> got(3);
  for (NodeId i = 0; i < 3; ++i) {
    pandas.push_back(make_panda(world.kernel(i), cfg));
    pandas.back()->set_group_handler(
        [&got, i](Thread&, NodeId, std::uint32_t, net::Payload m) -> sim::Co<void> {
          got[i] = std::move(m);
          co_return;
        });
  }
  for (auto& p : pandas) p->start();

  net::Payload sent = patterned(size);
  Thread& sender = world.kernel(1).create_thread("sender");
  sim::spawn([](Panda& p, Thread& self, net::Payload msg) -> sim::Co<void> {
    co_await p.group_send(self, std::move(msg));
  }(*pandas[1], sender, sent));
  world.sim().run();
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_TRUE(got[i].content_equals(sent)) << "member " << i << " size " << size;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SizeSweep,
    ::testing::Combine(::testing::Values(Binding::kKernelSpace,
                                         Binding::kUserSpace),
                       // Around every interesting boundary: empty, one
                       // fragment, the pan/FLIP fragment edges, the BB
                       // threshold, and multi-fragment sizes.
                       ::testing::Values(0UL, 1UL, 1399UL, 1400UL, 1401UL,
                                         1440UL, 1468UL, 2048UL, 4096UL,
                                         8000UL, 20000UL)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(std::get<0>(info.param) == Binding::kKernelSpace
                             ? "Kernel"
                             : "User") +
             "B" + std::to_string(std::get<1>(info.param));
    });

// Latency must be monotone non-decreasing in message size for each binding.
TEST(SizeSweepShape, RpcLatencyMonotoneInSize) {
  for (const Binding binding : {Binding::kKernelSpace, Binding::kUserSpace}) {
    sim::Time prev = 0;
    for (const std::size_t size : {0UL, 1024UL, 2048UL, 4096UL, 8192UL}) {
      amoeba::World world;
      world.add_nodes(2);
      ClusterConfig cfg;
      cfg.binding = binding;
      cfg.nodes = {0, 1};
      std::vector<std::unique_ptr<Panda>> pandas;
      for (NodeId i = 0; i < 2; ++i) {
        pandas.push_back(make_panda(world.kernel(i), cfg));
      }
      pandas[1]->set_rpc_handler(
          [&](Thread& upcall, RpcTicket t, net::Payload) -> sim::Co<void> {
            co_await pandas[1]->rpc_reply(upcall, t, net::Payload());
          });
      for (auto& p : pandas) p->start();
      sim::Time elapsed = 0;
      Thread& client = world.kernel(0).create_thread("client");
      sim::spawn([](Panda& p, Thread& self, sim::Simulator& s, std::size_t sz,
                    sim::Time& out) -> sim::Co<void> {
        (void)co_await p.rpc(self, 1, net::Payload::zeros(sz));  // warm
        const sim::Time t0 = s.now();
        (void)co_await p.rpc(self, 1, net::Payload::zeros(sz));
        out = s.now() - t0;
      }(*pandas[0], client, world.sim(), size, elapsed));
      world.sim().run();
      EXPECT_GE(elapsed, prev) << "binding "
                               << (binding == Binding::kKernelSpace ? "kernel"
                                                                    : "user")
                               << " size " << size;
      prev = elapsed;
    }
  }
}

}  // namespace
}  // namespace panda
