// Counting global operator new/delete. See alloc_audit.h for the sanitizer
// interaction that gates these hooks out.
#include "support/alloc_audit.h"

#include <atomic>
#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    defined(__SANITIZE_MEMORY__)
#define ALLOC_AUDIT_HOOKS_DISABLED 1
#endif
#if !defined(ALLOC_AUDIT_HOOKS_DISABLED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define ALLOC_AUDIT_HOOKS_DISABLED 1
#endif
#endif

namespace testsupport {
namespace {

std::atomic<std::uint64_t> g_news{0};
std::atomic<std::uint64_t> g_deletes{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<std::uint64_t> g_large_news{0};
std::atomic<std::uint64_t> g_large_bytes{0};

}  // namespace

AllocCounts alloc_counts() noexcept {
  AllocCounts c;
  c.news = g_news.load(std::memory_order_relaxed);
  c.deletes = g_deletes.load(std::memory_order_relaxed);
  c.bytes = g_bytes.load(std::memory_order_relaxed);
  c.large_news = g_large_news.load(std::memory_order_relaxed);
  c.large_bytes = g_large_bytes.load(std::memory_order_relaxed);
  return c;
}

bool alloc_counting_enabled() noexcept {
#if defined(ALLOC_AUDIT_HOOKS_DISABLED)
  return false;
#else
  return true;
#endif
}

}  // namespace testsupport

#if !defined(ALLOC_AUDIT_HOOKS_DISABLED)

namespace {

void note(std::size_t size) noexcept {
  testsupport::g_news.fetch_add(1, std::memory_order_relaxed);
  testsupport::g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (size >= testsupport::kLargeAllocBytes) {
    testsupport::g_large_news.fetch_add(1, std::memory_order_relaxed);
    testsupport::g_large_bytes.fetch_add(size, std::memory_order_relaxed);
  }
}

void* counted_alloc(std::size_t size) {
  note(size);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  testsupport::g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  note(size);
  if (void* p = std::aligned_alloc(align, (size + align - 1) / align * align))
    return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}

#endif  // !ALLOC_AUDIT_HOOKS_DISABLED
