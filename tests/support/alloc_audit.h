// Scoped allocation audit for tests: counts every global operator new/delete
// in the linking binary, so a test can assert that a region performs a
// bounded (or zero) number of host allocations.
//
// The hooks replace the global allocation functions, which clashes with the
// sanitizers' own interposition (ASan/TSan/MSan intercept malloc and account
// allocations themselves). Under those sanitizers the hooks compile away and
// `enabled()` reports false; tests should skip the global-count assertions
// (the net::payload_alloc_stats channel remains valid everywhere — it counts
// at the call site, not in the allocator).
#pragma once

#include <cstddef>
#include <cstdint>

namespace testsupport {

struct AllocCounts {
  std::uint64_t news = 0;     // operator new / new[] calls
  std::uint64_t deletes = 0;  // operator delete / delete[] calls
  std::uint64_t bytes = 0;    // total bytes requested through new
  // Requests of at least kLargeAllocBytes. Small allocations are coroutine
  // frames and container nodes — unavoidable per-event churn; bulk payload
  // copies show up here, so "large_bytes stayed flat" is the signal that no
  // per-byte copying path was reintroduced.
  std::uint64_t large_news = 0;
  std::uint64_t large_bytes = 0;
};

inline constexpr std::size_t kLargeAllocBytes = 4096;

/// Process-wide running totals (monotonic). Zeros when hooks are disabled.
[[nodiscard]] AllocCounts alloc_counts() noexcept;

/// False when the counting hooks are compiled out (sanitizer builds).
[[nodiscard]] bool alloc_counting_enabled() noexcept;

/// Samples the counters at construction; deltas are queried later.
class AllocAudit {
 public:
  AllocAudit() : start_(alloc_counts()) {}

  [[nodiscard]] std::uint64_t news_since() const noexcept {
    return alloc_counts().news - start_.news;
  }
  [[nodiscard]] std::uint64_t bytes_since() const noexcept {
    return alloc_counts().bytes - start_.bytes;
  }

 private:
  AllocCounts start_;
};

}  // namespace testsupport
