// Orca RTS semantics, exercised on both Panda bindings.
#include "orca/rts.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "amoeba/world.h"
#include "panda/panda.h"
#include "sim/co.h"

namespace orca {
namespace {

using panda::Binding;

// --- A shared counter type ---------------------------------------------------

struct CounterState final : ObjectState {
  std::int64_t value = 0;
};

struct CounterType {
  TypeId type = 0;
  OpId read = 0;
  OpId add = 0;          // write
  OpId await_at_least = 0;  // guarded read: blocks until value >= arg

  static CounterType register_in(TypeRegistry& reg) {
    CounterType ids;
    ObjectType t("counter", [](const net::Payload& init) {
      auto s = std::make_unique<CounterState>();
      if (init.size() >= 8) {
        net::Reader r(init);
        s->value = r.i64();
      }
      return s;
    });
    ids.read = t.add_operation(OpDef{
        .name = "read",
        .is_write = false,
        .guard = nullptr,
        .apply =
            [](ObjectState& s, const net::Payload&) {
              net::Writer w;
              w.i64(static_cast<CounterState&>(s).value);
              return w.take();
            },
        .cost = sim::usec(1)});
    ids.add = t.add_operation(OpDef{
        .name = "add",
        .is_write = true,
        .guard = nullptr,
        .apply =
            [](ObjectState& s, const net::Payload& args) {
              net::Reader r(args);
              auto& state = static_cast<CounterState&>(s);
              state.value += r.i64();
              net::Writer w;
              w.i64(state.value);
              return w.take();
            },
        .cost = sim::usec(2)});
    ids.await_at_least = t.add_operation(OpDef{
        .name = "await_at_least",
        .is_write = false,
        .guard =
            [](const ObjectState& s, const net::Payload& args) {
              net::Reader r(args);
              return static_cast<const CounterState&>(s).value >= r.i64();
            },
        .apply =
            [](ObjectState& s, const net::Payload&) {
              net::Writer w;
              w.i64(static_cast<CounterState&>(s).value);
              return w.take();
            },
        .cost = sim::usec(1)});
    ids.type = reg.register_type(std::move(t));
    return ids;
  }
};

net::Payload i64_payload(std::int64_t v) {
  net::Writer w;
  w.i64(v);
  return w.take();
}

std::int64_t i64_of(const net::Payload& p) {
  net::Reader r(p);
  return r.i64();
}

// --- Fixture -----------------------------------------------------------------

struct OrcaFixture {
  OrcaFixture(Binding binding, std::size_t n) {
    world = std::make_unique<amoeba::World>();
    world->add_nodes(n);
    counter = CounterType::register_in(registry);
    panda::ClusterConfig cfg;
    cfg.binding = binding;
    for (NodeId i = 0; i < n; ++i) cfg.nodes.push_back(i);
    for (NodeId i = 0; i < n; ++i) {
      pandas.push_back(panda::make_panda(world->kernel(i), cfg));
      rtses.push_back(std::make_unique<Rts>(*pandas.back(), registry));
      rtses.back()->attach();
    }
    for (auto& p : pandas) p->start();
  }

  void run() { world->sim().run(); }

  TypeRegistry registry;
  CounterType counter;
  std::unique_ptr<amoeba::World> world;
  std::vector<std::unique_ptr<panda::Panda>> pandas;
  std::vector<std::unique_ptr<Rts>> rtses;
};

class OrcaBothBindings : public ::testing::TestWithParam<Binding> {};

TEST_P(OrcaBothBindings, SingleCopyObjectLocalOps) {
  OrcaFixture f(GetParam(), 2);
  std::int64_t result = -1;
  f.rtses[0]->fork("p", [&](Process& p) -> sim::Co<void> {
    ObjHandle h = co_await p.rts().create_object(
        p.thread(), f.counter.type, i64_payload(10),
        ObjectHints{.expected_read_fraction = 0.1});
    EXPECT_EQ(h.placement, Placement::kSingleCopy);
    (void)co_await p.invoke(h, f.counter.add, i64_payload(5));
    result = i64_of(co_await p.invoke(h, f.counter.read));
  });
  f.run();
  EXPECT_EQ(result, 15);
}

TEST_P(OrcaBothBindings, RemoteInvocationViaRpc) {
  OrcaFixture f(GetParam(), 2);
  ObjHandle handle;
  bool created = false;
  f.rtses[0]->fork("owner", [&](Process& p) -> sim::Co<void> {
    handle = co_await p.rts().create_object(
        p.thread(), f.counter.type, i64_payload(100),
        ObjectHints{.expected_read_fraction = 0.1});
    created = true;
  });
  std::int64_t result = -1;
  f.rtses[1]->fork("client", [&](Process& p) -> sim::Co<void> {
    while (!created) co_await sim::delay(f.world->sim(), sim::msec(1));
    (void)co_await p.invoke(handle, f.counter.add, i64_payload(-58));
    result = i64_of(co_await p.invoke(handle, f.counter.read));
  });
  f.run();
  EXPECT_EQ(result, 42);
  EXPECT_GE(f.rtses[1]->remote_invocations(), 2u);
}

TEST_P(OrcaBothBindings, ReplicatedObjectReadsAreLocal) {
  OrcaFixture f(GetParam(), 4);
  ObjHandle handle;
  bool created = false;
  f.rtses[0]->fork("creator", [&](Process& p) -> sim::Co<void> {
    handle = co_await p.rts().create_object(
        p.thread(), f.counter.type, i64_payload(7),
        ObjectHints{.expected_read_fraction = 0.95});
    EXPECT_EQ(handle.placement, Placement::kReplicated);
    created = true;
  });
  std::vector<std::int64_t> reads(4, -1);
  for (NodeId n = 0; n < 4; ++n) {
    f.rtses[n]->fork("reader", [&, n](Process& p) -> sim::Co<void> {
      while (!created) co_await sim::delay(f.world->sim(), sim::msec(1));
      reads[n] = i64_of(co_await p.invoke(handle, f.counter.read));
    });
  }
  f.run();
  for (NodeId n = 0; n < 4; ++n) EXPECT_EQ(reads[n], 7) << "node " << n;
  const std::uint64_t bytes_before = f.world->network().total_bytes_carried();
  // More local reads must not generate traffic.
  std::int64_t again = -1;
  f.rtses[2]->fork("reader2", [&](Process& p) -> sim::Co<void> {
    again = i64_of(co_await p.invoke(handle, f.counter.read));
  });
  f.run();
  EXPECT_EQ(again, 7);
  EXPECT_EQ(f.world->network().total_bytes_carried(), bytes_before);
}

TEST_P(OrcaBothBindings, ReplicatedWritesKeepCopiesConsistent) {
  OrcaFixture f(GetParam(), 3);
  ObjHandle handle;
  bool created = false;
  f.rtses[0]->fork("creator", [&](Process& p) -> sim::Co<void> {
    handle = co_await p.rts().create_object(
        p.thread(), f.counter.type, i64_payload(0),
        ObjectHints{.expected_read_fraction = 0.9});
    created = true;
  });
  int writers_done = 0;
  for (NodeId n = 0; n < 3; ++n) {
    f.rtses[n]->fork("writer", [&, n](Process& p) -> sim::Co<void> {
      while (!created) co_await sim::delay(f.world->sim(), sim::msec(1));
      for (int i = 0; i < 5; ++i) {
        (void)co_await p.invoke(handle, f.counter.add, i64_payload(1));
      }
      ++writers_done;
    });
  }
  f.run();
  ASSERT_EQ(writers_done, 3);
  // Every replica converged to 15.
  std::vector<std::int64_t> finals(3, -1);
  for (NodeId n = 0; n < 3; ++n) {
    f.rtses[n]->fork("check", [&, n](Process& p) -> sim::Co<void> {
      finals[n] = i64_of(co_await p.invoke(handle, f.counter.read));
    });
  }
  f.run();
  for (NodeId n = 0; n < 3; ++n) EXPECT_EQ(finals[n], 15) << "node " << n;
}

TEST_P(OrcaBothBindings, ReplicatedWriteReturnsItsResult) {
  OrcaFixture f(GetParam(), 2);
  std::int64_t write_result = -1;
  f.rtses[0]->fork("p", [&](Process& p) -> sim::Co<void> {
    ObjHandle h = co_await p.rts().create_object(
        p.thread(), f.counter.type, i64_payload(40),
        ObjectHints{.expected_read_fraction = 0.9});
    write_result = i64_of(co_await p.invoke(h, f.counter.add, i64_payload(2)));
  });
  f.run();
  EXPECT_EQ(write_result, 42);
}

TEST_P(OrcaBothBindings, GuardedLocalOperationBlocksUntilWrite) {
  OrcaFixture f(GetParam(), 2);
  sim::Time unblocked_at = -1;
  f.rtses[0]->fork("p", [&](Process& p) -> sim::Co<void> {
    ObjHandle h = co_await p.rts().create_object(
        p.thread(), f.counter.type, i64_payload(0),
        ObjectHints{.expected_read_fraction = 0.1});
    // A second process on the same node bumps the counter after 10 ms.
    p.rts().fork("bumper", [&, h](Process& q) -> sim::Co<void> {
      co_await sim::delay(f.world->sim(), sim::msec(10));
      (void)co_await q.invoke(h, f.counter.add, i64_payload(100));
    });
    const std::int64_t v =
        i64_of(co_await p.invoke(h, f.counter.await_at_least, i64_payload(50)));
    EXPECT_GE(v, 50);
    unblocked_at = f.world->sim().now();
  });
  f.run();
  EXPECT_GE(unblocked_at, sim::msec(10));
}

TEST_P(OrcaBothBindings, GuardedRemoteOperationUsesContinuation) {
  OrcaFixture f(GetParam(), 2);
  ObjHandle handle;
  bool created = false;
  f.rtses[0]->fork("owner", [&](Process& p) -> sim::Co<void> {
    handle = co_await p.rts().create_object(
        p.thread(), f.counter.type, i64_payload(0),
        ObjectHints{.expected_read_fraction = 0.1});
    created = true;
    // Make the guard true 20 ms later.
    co_await sim::delay(f.world->sim(), sim::msec(20));
    (void)co_await p.invoke(handle, f.counter.add, i64_payload(999));
  });
  std::int64_t got = -1;
  sim::Time replied_at = -1;
  f.rtses[1]->fork("waiter", [&](Process& p) -> sim::Co<void> {
    while (!created) co_await sim::delay(f.world->sim(), sim::msec(1));
    got = i64_of(
        co_await p.invoke(handle, f.counter.await_at_least, i64_payload(500)));
    replied_at = f.world->sim().now();
  });
  f.run();
  EXPECT_EQ(got, 999);
  EXPECT_GE(replied_at, sim::msec(20));
  EXPECT_EQ(f.rtses[0]->continuations_created(), 1u);
  EXPECT_EQ(f.rtses[0]->continuations_resumed(), 1u);
}

TEST_P(OrcaBothBindings, GuardedReplicatedWriteAppliesEverywhereWhenReady) {
  OrcaFixture f(GetParam(), 3);
  // A guarded *write* on a replicated object: subtract only when value >= 5.
  TypeRegistry& reg = f.registry;
  (void)reg;
  ObjHandle handle;
  bool created = false;
  std::int64_t result = -1;
  f.rtses[0]->fork("p", [&](Process& p) -> sim::Co<void> {
    handle = co_await p.rts().create_object(
        p.thread(), f.counter.type, i64_payload(0),
        ObjectHints{.expected_read_fraction = 0.9});
    created = true;
    result = i64_of(
        co_await p.invoke(handle, f.counter.await_at_least, i64_payload(5)));
  });
  f.rtses[2]->fork("bumper", [&](Process& p) -> sim::Co<void> {
    while (!created) co_await sim::delay(f.world->sim(), sim::msec(1));
    co_await sim::delay(f.world->sim(), sim::msec(5));
    (void)co_await p.invoke(handle, f.counter.add, i64_payload(6));
  });
  f.run();
  EXPECT_EQ(result, 6);
}

// Sequential consistency probe: with totally-ordered writes, two replicas
// can never observe two writes in opposite orders.
TEST_P(OrcaBothBindings, WritesObservedInTheSameOrderEverywhere) {
  OrcaFixture f(GetParam(), 4);
  ObjHandle handle;
  bool created = false;
  f.rtses[0]->fork("creator", [&](Process& p) -> sim::Co<void> {
    handle = co_await p.rts().create_object(
        p.thread(), f.counter.type, i64_payload(0),
        ObjectHints{.expected_read_fraction = 0.9});
    created = true;
  });
  // Writers on nodes 1 and 2 add distinct bit values; readers poll and log
  // observed values. Any observed value must be a prefix-sum consistent with
  // ONE global order, i.e. the set of observed values at every node must be
  // drawn from {0, a, b, a+b} with a before b or b before a consistently.
  int done = 0;
  for (NodeId n : {1u, 2u}) {
    f.rtses[n]->fork("writer", [&, n](Process& p) -> sim::Co<void> {
      while (!created) co_await sim::delay(f.world->sim(), sim::msec(1));
      (void)co_await p.invoke(handle, f.counter.add,
                              i64_payload(n == 1 ? 1 : 2));
      ++done;
    });
  }
  std::vector<std::vector<std::int64_t>> observed(4);
  for (NodeId n = 0; n < 4; ++n) {
    f.rtses[n]->fork("reader", [&, n](Process& p) -> sim::Co<void> {
      while (!created) co_await sim::delay(f.world->sim(), sim::usec(100));
      for (int i = 0; i < 200; ++i) {
        observed[n].push_back(i64_of(co_await p.invoke(handle, f.counter.read)));
        co_await sim::delay(f.world->sim(), sim::usec(50));
      }
    });
  }
  f.run();
  ASSERT_EQ(done, 2);
  // Determine the global order from any node that saw an intermediate value.
  std::int64_t first_intermediate = 0;
  for (const auto& log : observed) {
    for (const std::int64_t v : log) {
      if (v == 1 || v == 2) {
        first_intermediate = v;
        break;
      }
    }
    if (first_intermediate != 0) break;
  }
  // No node may observe the *other* intermediate value.
  if (first_intermediate != 0) {
    const std::int64_t forbidden = first_intermediate == 1 ? 2 : 1;
    for (NodeId n = 0; n < 4; ++n) {
      for (const std::int64_t v : observed[n]) {
        EXPECT_NE(v, forbidden) << "node " << n << " observed conflicting order";
      }
    }
  }
  // And everyone converges to 3.
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_FALSE(observed[n].empty());
    EXPECT_EQ(observed[n].back(), 3);
  }
}

TEST_P(OrcaBothBindings, ManyObjectsCoexist) {
  OrcaFixture f(GetParam(), 2);
  std::int64_t sum = 0;
  f.rtses[0]->fork("p", [&](Process& p) -> sim::Co<void> {
    std::vector<ObjHandle> handles;
    for (int i = 0; i < 10; ++i) {
      handles.push_back(co_await p.rts().create_object(
          p.thread(), f.counter.type, i64_payload(i),
          ObjectHints{.expected_read_fraction = i % 2 ? 0.9 : 0.1}));
    }
    for (const ObjHandle& h : handles) {
      sum += i64_of(co_await p.invoke(h, f.counter.read));
    }
  });
  f.run();
  EXPECT_EQ(sum, 45);
}

INSTANTIATE_TEST_SUITE_P(Bindings, OrcaBothBindings,
                         ::testing::Values(Binding::kKernelSpace,
                                           Binding::kUserSpace),
                         [](const ::testing::TestParamInfo<Binding>& info) {
                           return info.param == Binding::kKernelSpace
                                      ? "KernelSpace"
                                      : "UserSpace";
                         });

// The paper's key application-level asymmetry: a blocked guarded operation
// resumed by another thread costs the kernel binding an extra context switch
// (signal + switch), which the user-space binding avoids.
TEST(OrcaContinuations, KernelBindingPaysExtraSwitchOnResume) {
  auto run_once = [](Binding binding) {
    OrcaFixture f(binding, 2);
    ObjHandle handle;
    bool created = false;
    f.rtses[0]->fork("owner", [&](Process& p) -> sim::Co<void> {
      handle = co_await p.rts().create_object(
          p.thread(), f.counter.type, i64_payload(0),
          ObjectHints{.expected_read_fraction = 0.1});
      created = true;
    });
    f.rtses[0]->fork("mutator", [&](Process& p) -> sim::Co<void> {
      while (!created) co_await sim::delay(f.world->sim(), sim::msec(1));
      co_await sim::delay(f.world->sim(), sim::msec(30));
      (void)co_await p.invoke(handle, f.counter.add, i64_payload(10));
    });
    sim::Time replied = -1;
    f.rtses[1]->fork("waiter", [&](Process& p) -> sim::Co<void> {
      while (!created) co_await sim::delay(f.world->sim(), sim::msec(1));
      (void)co_await p.invoke(handle, f.counter.await_at_least, i64_payload(10));
      replied = f.world->sim().now();
    });
    f.run();
    const auto& ledger = f.world->kernel(0).ledger();
    return std::make_pair(replied,
                          ledger.get(sim::Mechanism::kSignal).count +
                              ledger.get(sim::Mechanism::kContextSwitch).count);
  };
  const auto [kernel_time, kernel_switches] = run_once(Binding::kKernelSpace);
  const auto [user_time, user_switches] = run_once(Binding::kUserSpace);
  EXPECT_GT(kernel_time, 0);
  EXPECT_GT(user_time, 0);
  // The kernel binding's owner node does strictly more signalling/switching
  // to push the deferred reply through the original daemon thread.
  EXPECT_GT(kernel_switches, user_switches);
}

}  // namespace
}  // namespace orca
