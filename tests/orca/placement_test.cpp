// Placement policy and object-model edge cases.
#include <gtest/gtest.h>

#include <memory>

#include "amoeba/world.h"
#include "orca/rts.h"
#include "panda/panda.h"

namespace orca {
namespace {

struct BoxState final : ObjectState {
  std::int64_t v = 0;
};

struct Fixture {
  Fixture() {
    world.add_nodes(2);
    ObjectType t("box", [](const net::Payload& init) {
      auto s = std::make_unique<BoxState>();
      if (init.size() >= 8) {
        net::Reader r(init);
        s->v = r.i64();
      }
      return s;
    });
    get = t.add_operation({.name = "get",
                           .is_write = false,
                           .guard = nullptr,
                           .apply =
                               [](ObjectState& s, const net::Payload&) {
                                 net::Writer w;
                                 w.i64(static_cast<BoxState&>(s).v);
                                 return w.take();
                               },
                           .cost = 0});
    set = t.add_operation({.name = "set",
                           .is_write = true,
                           .guard = nullptr,
                           .apply =
                               [](ObjectState& s, const net::Payload& a) {
                                 net::Reader r(a);
                                 static_cast<BoxState&>(s).v = r.i64();
                                 return net::Payload();
                               },
                           .cost = sim::usec(1)});
    type = registry.register_type(std::move(t));
    panda::ClusterConfig cfg;
    cfg.binding = panda::Binding::kUserSpace;
    cfg.nodes = {0, 1};
    for (amoeba::NodeId i = 0; i < 2; ++i) {
      pandas.push_back(panda::make_panda(world.kernel(i), cfg));
      rtses.push_back(std::make_unique<Rts>(*pandas.back(), registry));
      rtses.back()->attach();
    }
    for (auto& p : pandas) p->start();
  }

  amoeba::World world;
  TypeRegistry registry;
  TypeId type = 0;
  OpId get = 0;
  OpId set = 0;
  std::vector<std::unique_ptr<panda::Panda>> pandas;
  std::vector<std::unique_ptr<Rts>> rtses;
};

TEST(Placement, HintThresholdDecidesReplication) {
  Fixture f;
  Placement low = Placement::kReplicated;
  Placement high = Placement::kSingleCopy;
  f.rtses[0]->fork("p", [&](Process& p) -> sim::Co<void> {
    ObjHandle a = co_await p.rts().create_object(
        p.thread(), f.type, net::Payload(),
        ObjectHints{.expected_read_fraction = 0.2});
    ObjHandle b = co_await p.rts().create_object(
        p.thread(), f.type, net::Payload(),
        ObjectHints{.expected_read_fraction = 0.95});
    low = a.placement;
    high = b.placement;
  });
  f.world.sim().run();
  EXPECT_EQ(low, Placement::kSingleCopy);
  EXPECT_EQ(high, Placement::kReplicated);
}

TEST(Placement, SingleCopyWritesStayOffTheWireAtTheOwner) {
  Fixture f;
  f.rtses[0]->fork("p", [&](Process& p) -> sim::Co<void> {
    ObjHandle h = co_await p.rts().create_object(
        p.thread(), f.type, net::Payload(),
        ObjectHints{.expected_read_fraction = 0.0});
    net::Writer w;
    w.i64(5);
    (void)co_await p.invoke(h, f.set, w.take());
  });
  f.world.sim().run();
  EXPECT_EQ(f.world.network().total_bytes_carried(), 0u);
}

TEST(Placement, ReplicatedCreationReachesAllNodesBeforeUse) {
  Fixture f;
  std::int64_t seen = -1;
  ObjHandle handle;
  bool created = false;
  f.rtses[0]->fork("creator", [&](Process& p) -> sim::Co<void> {
    net::Writer init;
    init.i64(77);
    handle = co_await p.rts().create_object(
        p.thread(), f.type, init.take(),
        ObjectHints{.expected_read_fraction = 0.9});
    created = true;
  });
  f.rtses[1]->fork("reader", [&](Process& p) -> sim::Co<void> {
    while (!created) co_await sim::delay(f.world.sim(), sim::usec(100));
    net::Payload v = co_await p.invoke(handle, f.get);
    net::Reader r(v);
    seen = r.i64();
  });
  f.world.sim().run();
  EXPECT_EQ(seen, 77);
}

TEST(Placement, ObjectIdsNeverCollideAcrossCreatingNodes) {
  Fixture f;
  ObjHandle a;
  ObjHandle b;
  for (amoeba::NodeId n = 0; n < 2; ++n) {
    f.rtses[n]->fork("creator", [&, n](Process& p) -> sim::Co<void> {
      ObjHandle h = co_await p.rts().create_object(
          p.thread(), f.type, net::Payload(),
          ObjectHints{.expected_read_fraction = 0.0});
      (n == 0 ? a : b) = h;
    });
  }
  f.world.sim().run();
  EXPECT_NE(a.id, 0u);
  EXPECT_NE(b.id, 0u);
  EXPECT_NE(a.id, b.id);
  EXPECT_EQ(a.owner, 0u);
  EXPECT_EQ(b.owner, 1u);
}

TEST(Placement, UnknownTypeAndOpAreRejected) {
  TypeRegistry reg;
  EXPECT_THROW((void)reg.type(0), sim::SimError);
  ObjectType t("t", [](const net::Payload&) {
    return std::make_unique<BoxState>();
  });
  EXPECT_THROW((void)t.op(0), sim::SimError);
}

}  // namespace
}  // namespace orca
