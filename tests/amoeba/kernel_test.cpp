#include "amoeba/kernel.h"

#include <gtest/gtest.h>

#include "amoeba/world.h"
#include "sim/co.h"

namespace amoeba {
namespace {

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() { world.add_nodes(1); }
  World world;
  Kernel& k() { return world.kernel(0); }
};

TEST_F(KernelTest, ThreadIdsAreUniqueAcrossNodes) {
  World two;
  two.add_nodes(2);
  Thread& a = two.kernel(0).create_thread("a");
  Thread& b = two.kernel(0).create_thread("b");
  Thread& c = two.kernel(1).create_thread("c");
  EXPECT_NE(a.id(), b.id());
  EXPECT_NE(a.id(), c.id());
  EXPECT_NE(b.id(), c.id());
}

TEST_F(KernelTest, ThreadBlockUnblock) {
  Thread& t = k().create_thread("worker");
  bool resumed = false;
  sim::spawn([](Thread& th, bool& flag) -> sim::Co<void> {
    co_await th.block();
    flag = true;
  }(t, resumed));
  world.sim().run();
  EXPECT_FALSE(resumed);
  t.unblock();
  world.sim().run();
  EXPECT_TRUE(resumed);
}

TEST_F(KernelTest, UnblockBeforeBlockIsNotLost) {
  Thread& t = k().create_thread("worker");
  t.unblock();  // token deposited first
  bool resumed = false;
  sim::spawn([](Thread& th, bool& flag) -> sim::Co<void> {
    co_await th.block();
    flag = true;
  }(t, resumed));
  world.sim().run();
  EXPECT_TRUE(resumed);
}

TEST_F(KernelTest, BlockForTimesOut) {
  Thread& t = k().create_thread("worker");
  bool got = true;
  sim::spawn([](Thread& th, bool& result) -> sim::Co<void> {
    result = co_await th.block_for(sim::usec(100));
  }(t, got));
  world.sim().run();
  EXPECT_FALSE(got);
  EXPECT_EQ(world.sim().now(), sim::usec(100));
}

TEST_F(KernelTest, SyscallReturnTrapsAreBoundedByWindowCount) {
  sim::run(world.sim(), k().syscall_return(/*stack_depth=*/20));
  const auto& traps = k().ledger().get(sim::Mechanism::kUnderflowTrap);
  EXPECT_EQ(traps.count, 6u);  // clamped to the six SPARC windows
  EXPECT_EQ(traps.total, world.costs().underflow_trap * 6);
}

TEST_F(KernelTest, DispatchChargesFullSwitchWhenContextNotLoaded) {
  Thread& a = k().create_thread("a");
  Thread& b = k().create_thread("b");
  k().note_running(a.id());
  sim::run(world.sim(), k().dispatch(b));
  EXPECT_EQ(k().ledger().get(sim::Mechanism::kContextSwitch).total,
            world.costs().context_switch);
  EXPECT_EQ(k().loaded_context(), b.id());
}

TEST_F(KernelTest, DispatchIsCheapWhenContextLoaded) {
  Thread& a = k().create_thread("a");
  k().note_running(a.id());
  sim::run(world.sim(), k().dispatch(a));
  EXPECT_EQ(k().ledger().get(sim::Mechanism::kContextSwitch).count, 0u);
  EXPECT_EQ(k().ledger().get(sim::Mechanism::kSignal).total,
            world.costs().resume_loaded);
}

TEST_F(KernelTest, InterruptDispatchUsesSequencerPathCosts) {
  Thread& a = k().create_thread("a");
  Thread& b = k().create_thread("b");
  k().note_running(a.id());
  sim::run(world.sim(), k().dispatch_from_interrupt(b));
  EXPECT_EQ(k().ledger().get(sim::Mechanism::kThreadSwitch).total,
            world.costs().interrupt_thread_switch);
  // Now b's context is loaded: the cheap variant applies.
  sim::run(world.sim(), k().dispatch_from_interrupt(b));
  EXPECT_EQ(k().ledger().get(sim::Mechanism::kThreadSwitch).total,
            world.costs().interrupt_thread_switch +
                world.costs().interrupt_thread_switch_loaded);
}

TEST_F(KernelTest, SignalThreadBundlesCrossingsAndTraps) {
  Thread& daemon = k().create_thread("daemon");
  Thread& client = k().create_thread("client");
  k().note_running(daemon.id());
  sim::run(world.sim(),
           k().signal_thread(client, world.costs().panda_stack_depth));
  const auto& ledger = k().ledger();
  EXPECT_EQ(ledger.get(sim::Mechanism::kSyscallCrossing).count, 2u);
  EXPECT_EQ(ledger.get(sim::Mechanism::kUnderflowTrap).count, 6u);
  EXPECT_EQ(ledger.get(sim::Mechanism::kContextSwitch).count, 1u);
}

TEST_F(KernelTest, ComputeChargesResumeSwitchAfterOtherThreadRan) {
  Thread& app = k().create_thread("app");
  Thread& daemon = k().create_thread("daemon");
  sim::run(world.sim(), k().compute(app, sim::usec(100)));
  EXPECT_EQ(k().ledger().get(sim::Mechanism::kContextSwitch).count, 1u);
  // Same thread continues: no new switch.
  sim::run(world.sim(), k().compute(app, sim::usec(100)));
  EXPECT_EQ(k().ledger().get(sim::Mechanism::kContextSwitch).count, 1u);
  // A daemon dispatch intervenes; the next compute pays the resume switch.
  sim::run(world.sim(), k().dispatch(daemon));
  sim::run(world.sim(), k().compute(app, sim::usec(100)));
  EXPECT_EQ(k().ledger().get(sim::Mechanism::kContextSwitch).count, 3u);
}

TEST_F(KernelTest, CopyBoundaryScalesWithBytes) {
  sim::run(world.sim(), k().copy_boundary(1000));
  EXPECT_EQ(k().ledger().get(sim::Mechanism::kUserKernelCopy).total,
            world.costs().copy_ns_per_byte * 1000);
  sim::run(world.sim(), k().copy_boundary(0));
  EXPECT_EQ(k().ledger().get(sim::Mechanism::kUserKernelCopy).count, 1u);
}

TEST_F(KernelTest, ChargesOccupyTheCpu) {
  const sim::Time before = world.sim().now();
  sim::run(world.sim(), k().charge(sim::Prio::kKernel,
                                   sim::Mechanism::kProtocolProcessing,
                                   sim::usec(500)));
  EXPECT_EQ(world.sim().now() - before, sim::usec(500));
  EXPECT_EQ(k().cpu().busy_time(sim::Prio::kKernel), sim::usec(500));
}

}  // namespace
}  // namespace amoeba
