#include "amoeba/flip.h"

#include <gtest/gtest.h>

#include <vector>

#include "amoeba/kernel.h"
#include "amoeba/world.h"
#include "net/buffer.h"
#include "sim/co.h"

namespace amoeba {
namespace {

constexpr FlipAddr kEndpointA = 0x1000;
constexpr FlipAddr kEndpointB = 0x2000;
constexpr FlipAddr kGroupG = kFlipGroupBit | 0x42;

struct Received {
  FlipAddr src;
  FlipAddr dst;
  std::size_t size;
  sim::Time at;
};

FlipHandler recorder(sim::Simulator& s, std::vector<Received>& log) {
  return [&s, &log](FlipMessage m) -> sim::Co<void> {
    log.push_back(Received{m.src, m.dst, m.payload.size(), s.now()});
    co_return;
  };
}

class FlipTest : public ::testing::Test {
 protected:
  FlipTest() {
    world.add_nodes(4);
  }
  World world;
  std::vector<Received> log;
};

TEST_F(FlipTest, UnicastDeliversAfterLocate) {
  world.kernel(1).flip().register_endpoint(kEndpointB, recorder(world.sim(), log));
  sim::spawn(world.kernel(0).flip().unicast(kEndpointB, net::Payload::zeros(100)));
  world.sim().run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].dst, kEndpointB);
  EXPECT_EQ(log[0].src, kernel_flip_addr(0));
  EXPECT_EQ(log[0].size, 100u);
  EXPECT_EQ(world.kernel(0).flip().locates_sent(), 1u);
}

TEST_F(FlipTest, SecondSendUsesCachedRoute) {
  world.kernel(1).flip().register_endpoint(kEndpointB, recorder(world.sim(), log));
  sim::spawn(world.kernel(0).flip().unicast(kEndpointB, net::Payload::zeros(10)));
  world.sim().run();
  sim::spawn(world.kernel(0).flip().unicast(kEndpointB, net::Payload::zeros(10)));
  world.sim().run();
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(world.kernel(0).flip().locates_sent(), 1u);
}

TEST_F(FlipTest, LocalDeliveryNeverTouchesTheWire) {
  world.kernel(0).flip().register_endpoint(kEndpointA, recorder(world.sim(), log));
  sim::spawn(world.kernel(0).flip().unicast(kEndpointA, net::Payload::zeros(64)));
  world.sim().run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(world.network().total_bytes_carried(), 0u);
}

TEST_F(FlipTest, LocateRetriesThenGivesUp) {
  // Nobody owns kEndpointB: the locate retries then the message vanishes.
  sim::spawn(world.kernel(0).flip().unicast(kEndpointB, net::Payload::zeros(10)));
  world.sim().run();
  EXPECT_EQ(world.kernel(0).flip().locates_sent(), 5u);
  EXPECT_TRUE(log.empty());
}

TEST_F(FlipTest, LateRegistrationIsFoundByARetry) {
  sim::spawn(world.kernel(0).flip().unicast(kEndpointB, net::Payload::zeros(10)));
  // Register on node 1 after the first locate has already failed.
  world.sim().run_until(sim::msec(15));
  world.kernel(1).flip().register_endpoint(kEndpointB, recorder(world.sim(), log));
  world.sim().run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_GE(world.kernel(0).flip().locates_sent(), 2u);
}

TEST_F(FlipTest, LargeMessagesAreFragmentedAndReassembled) {
  world.kernel(1).flip().register_endpoint(kEndpointB, recorder(world.sim(), log));
  const std::size_t size = 4096;
  EXPECT_EQ(world.kernel(0).flip().fragment_count(size), 3u);
  sim::spawn(world.kernel(0).flip().unicast(kEndpointB, net::Payload::zeros(size)));
  world.sim().run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].size, size);
}

TEST_F(FlipTest, FragmentContentSurvivesReassembly) {
  net::Payload got;
  world.kernel(1).flip().register_endpoint(
      kEndpointB, [&](FlipMessage m) -> sim::Co<void> {
        got = m.payload;
        co_return;
      });
  net::Writer w;
  for (std::uint32_t i = 0; i < 1000; ++i) w.u32(i);
  net::Payload sent = w.take();  // 4000 bytes, 3 fragments
  sim::spawn(world.kernel(0).flip().unicast(kEndpointB, sent));
  world.sim().run();
  ASSERT_EQ(got.size(), sent.size());
  EXPECT_TRUE(got.content_equals(sent));
}

TEST_F(FlipTest, PacketBoundariesMatchThePaper) {
  // §4.1: 2 Kb fits in two packets; 3 Kb and 4 Kb both take three.
  Flip& f = world.kernel(0).flip();
  EXPECT_EQ(f.fragment_count(0), 1u);
  EXPECT_EQ(f.fragment_count(1024), 1u);
  EXPECT_EQ(f.fragment_count(2048), 2u);
  EXPECT_EQ(f.fragment_count(3072), 3u);
  EXPECT_EQ(f.fragment_count(4096), 3u);
}

TEST_F(FlipTest, MulticastReachesAllMembersInOneTransmission) {
  for (NodeId n : {1u, 2u, 3u}) {
    world.kernel(n).flip().register_group(kGroupG, recorder(world.sim(), log));
  }
  sim::spawn(world.kernel(0).flip().multicast(kGroupG, net::Payload::zeros(200)));
  world.sim().run();
  EXPECT_EQ(log.size(), 3u);
  // One frame on the sender's segment (all four nodes share it).
  EXPECT_EQ(world.network().segment(0).frames_carried(), 1u);
}

TEST_F(FlipTest, MulticastDoesNotLoopBackToSender) {
  world.kernel(0).flip().register_group(kGroupG, recorder(world.sim(), log));
  world.kernel(1).flip().register_group(kGroupG, recorder(world.sim(), log));
  sim::spawn(world.kernel(0).flip().multicast(kGroupG, net::Payload::zeros(10)));
  world.sim().run();
  ASSERT_EQ(log.size(), 1u);  // only node 1
}

TEST_F(FlipTest, LostFragmentKillsTheWholeMessage) {
  world.kernel(1).flip().register_endpoint(kEndpointB, recorder(world.sim(), log));
  // Warm the route first so the data frames are identifiable.
  sim::spawn(world.kernel(0).flip().unicast(kEndpointB, net::Payload::zeros(1)));
  world.sim().run();
  ASSERT_EQ(log.size(), 1u);
  log.clear();
  // Drop exactly one data frame of the next (3-fragment) message.
  int data_frames = 0;
  world.network().segment(0).set_loss_hook([&](const net::Frame&) {
    return ++data_frames == 2;  // second fragment dies
  });
  sim::spawn(world.kernel(0).flip().unicast(kEndpointB, net::Payload::zeros(4000)));
  world.sim().run();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(world.kernel(1).flip().reassembly_timeouts(), 1u);
}

TEST_F(FlipTest, InterleavedMessagesFromTwoSendersBothArrive) {
  world.kernel(2).flip().register_endpoint(kEndpointB, recorder(world.sim(), log));
  sim::spawn(world.kernel(0).flip().unicast(kEndpointB, net::Payload::zeros(3000)));
  sim::spawn(world.kernel(1).flip().unicast(kEndpointB, net::Payload::zeros(3000)));
  world.sim().run();
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].size, 3000u);
  EXPECT_EQ(log[1].size, 3000u);
}

TEST_F(FlipTest, CrossSegmentUnicastWorks) {
  World big;
  big.add_nodes(16);
  std::vector<Received> rlog;
  big.kernel(9).flip().register_endpoint(kEndpointB, recorder(big.sim(), rlog));
  sim::spawn(big.kernel(0).flip().unicast(kEndpointB, net::Payload::zeros(2000)));
  big.sim().run();
  ASSERT_EQ(rlog.size(), 1u);
  EXPECT_EQ(rlog[0].size, 2000u);
}

TEST_F(FlipTest, ReceiveChargesShowInLedger) {
  world.kernel(1).flip().register_endpoint(kEndpointB, recorder(world.sim(), log));
  sim::spawn(world.kernel(0).flip().unicast(kEndpointB, net::Payload::zeros(100)));
  world.sim().run();
  const auto& e =
      world.kernel(1).ledger().get(sim::Mechanism::kInterruptDispatch);
  EXPECT_GE(e.count, 1u);
  EXPECT_GT(e.total, 0);
}

TEST_F(FlipTest, ReassemblyCopyIsChargedPerByte) {
  // Every byte std::copy'd into the reassembly buffer must show up in the
  // copy ledger at the standard per-byte rate. Single-fragment messages skip
  // reassembly entirely, so compare a fragmented send against the
  // single-fragment baseline on the receiving node.
  world.kernel(1).flip().register_endpoint(kEndpointB, recorder(world.sim(), log));
  sim::spawn(world.kernel(0).flip().unicast(kEndpointB, net::Payload::zeros(100)));
  world.sim().run();
  const sim::Time baseline =
      world.kernel(1).ledger().get(sim::Mechanism::kUserKernelCopy).total;

  const std::size_t size = 4000;  // three fragments
  sim::spawn(world.kernel(0).flip().unicast(kEndpointB, net::Payload::zeros(size)));
  world.sim().run();
  ASSERT_EQ(log.size(), 2u);
  const sim::Time after =
      world.kernel(1).ledger().get(sim::Mechanism::kUserKernelCopy).total;
  EXPECT_EQ(after - baseline,
            world.costs().copy_ns_per_byte * static_cast<sim::Time>(size));
}

TEST_F(FlipTest, GroupAddressValidation) {
  EXPECT_THROW(world.kernel(0).flip().register_endpoint(
                   kGroupG, recorder(world.sim(), log)),
               sim::SimError);
  EXPECT_THROW(world.kernel(0).flip().register_group(
                   kEndpointA, recorder(world.sim(), log)),
               sim::SimError);
}

}  // namespace
}  // namespace amoeba
