#include "amoeba/group.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "amoeba/world.h"
#include "sim/co.h"

namespace amoeba {
namespace {

constexpr GroupId kGid = 1;

class GroupTest : public ::testing::Test {
 protected:
  void boot(std::size_t n, GroupConfig base = {}) {
    world.add_nodes(n);
    base.members.clear();
    for (NodeId i = 0; i < n; ++i) base.members.push_back(i);
    for (NodeId i = 0; i < n; ++i) {
      groups.push_back(std::make_unique<KernelGroup>(world.kernel(i)));
      groups.back()->join(kGid, base);
    }
    received.resize(n);
  }

  /// A listener per member recording (sender, seqno) pairs in order.
  void start_listener(NodeId n, int expect) {
    Thread& t = world.kernel(n).create_thread("listener");
    sim::spawn([](KernelGroup& g, Thread& self, std::vector<GroupMsg>& log,
                  int count) -> sim::Co<void> {
      for (int i = 0; i < count; ++i) {
        GroupMsg m = co_await g.receive(self, kGid);
        log.push_back(std::move(m));
      }
    }(*groups[n], t, received[n], expect));
  }

  void send_from(NodeId n, std::size_t bytes, int count = 1) {
    Thread& t = world.kernel(n).create_thread("sender");
    sim::spawn([](KernelGroup& g, Thread& self, std::size_t sz,
                  int k) -> sim::Co<void> {
      for (int i = 0; i < k; ++i) co_await g.send(self, kGid, net::Payload::zeros(sz));
    }(*groups[n], t, bytes, count));
  }

  World world;
  std::vector<std::unique_ptr<KernelGroup>> groups;
  std::vector<std::vector<GroupMsg>> received;
};

TEST_F(GroupTest, SingleSendReachesAllMembers) {
  boot(4);
  for (NodeId n = 0; n < 4; ++n) start_listener(n, 1);
  send_from(2, 100);
  world.sim().run();
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_EQ(received[n].size(), 1u) << "member " << n;
    EXPECT_EQ(received[n][0].sender, 2u);
    EXPECT_EQ(received[n][0].seqno, 1u);
    EXPECT_EQ(received[n][0].payload.size(), 100u);
  }
}

TEST_F(GroupTest, SequencerMemberCanSend) {
  boot(3);
  for (NodeId n = 0; n < 3; ++n) start_listener(n, 1);
  send_from(0, 50);  // node 0 is the sequencer (index 0)
  world.sim().run();
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_EQ(received[n].size(), 1u);
    EXPECT_EQ(received[n][0].sender, 0u);
  }
}

TEST_F(GroupTest, TotalOrderIsIdenticalEverywhere) {
  boot(4);
  const int kEach = 10;
  for (NodeId n = 0; n < 4; ++n) start_listener(n, 4 * kEach);
  for (NodeId n = 0; n < 4; ++n) send_from(n, 64, kEach);
  world.sim().run();
  ASSERT_EQ(received[0].size(), static_cast<std::size_t>(4 * kEach));
  for (NodeId n = 1; n < 4; ++n) {
    ASSERT_EQ(received[n].size(), received[0].size());
    for (std::size_t i = 0; i < received[0].size(); ++i) {
      EXPECT_EQ(received[n][i].seqno, received[0][i].seqno);
      EXPECT_EQ(received[n][i].sender, received[0][i].sender);
    }
  }
  // Sequence numbers are dense 1..40.
  for (std::size_t i = 0; i < received[0].size(); ++i) {
    EXPECT_EQ(received[0][i].seqno, i + 1);
  }
}

TEST_F(GroupTest, LargeMessagesUseTheBBMethod) {
  boot(3);
  for (NodeId n = 0; n < 3; ++n) start_listener(n, 1);
  send_from(1, 8000);  // well above bb_threshold
  world.sim().run();
  EXPECT_EQ(groups[1]->bb_sends(), 1u);
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_EQ(received[n].size(), 1u);
    EXPECT_EQ(received[n][0].payload.size(), 8000u);
  }
}

TEST_F(GroupTest, SenderUnblocksOnlyAfterSequencing) {
  boot(2);
  start_listener(0, 1);
  start_listener(1, 1);
  sim::Time send_done = -1;
  sim::Time delivered_at_sender = -1;
  Thread& t = world.kernel(1).create_thread("sender");
  sim::spawn([](KernelGroup& g, Thread& self, sim::Simulator& s,
                sim::Time& done) -> sim::Co<void> {
    co_await g.send(self, kGid, net::Payload::zeros(64));
    done = s.now();
  }(*groups[1], t, world.sim(), send_done));
  world.sim().run();
  delivered_at_sender = world.sim().now();
  EXPECT_GT(send_done, 0);
  // The blocking send took at least one round trip to the sequencer.
  EXPECT_GT(send_done, sim::msec(1));
  (void)delivered_at_sender;
}

TEST_F(GroupTest, LostAcceptIsRepairedByGapRequest) {
  boot(3);
  for (NodeId n = 0; n < 3; ++n) start_listener(n, 3);
  // Drop the first ACCEPT multicast only at member 2's NIC.
  int dropped = 0;
  world.network().nic(2).set_rx_drop_hook([&](const net::Frame& f) {
    if (dropped == 0 && net::is_multicast(f.dst)) {
      ++dropped;
      return true;
    }
    return false;
  });
  send_from(1, 64, 3);
  world.sim().run();
  EXPECT_EQ(dropped, 1);
  ASSERT_EQ(received[2].size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(received[2][i].seqno, i + 1);
  EXPECT_GE(groups[0]->retransmit_requests(), 1u);
}

TEST_F(GroupTest, LostRequestIsRetriedBySender) {
  boot(2, [] {
    GroupConfig cfg;
    cfg.send_retry_interval = sim::msec(20);
    return cfg;
  }());
  start_listener(0, 1);
  start_listener(1, 1);
  // Drop the first unicast REQ from member 1 (after the locate exchange).
  int dropped = 0;
  world.network().segment(0).set_loss_hook([&](const net::Frame& f) {
    if (dropped == 0 && f.src == 2 && net::is_unicast(f.dst) &&
        f.payload.size() > 80) {
      ++dropped;
      return true;
    }
    return false;
  });
  send_from(1, 64);
  world.sim().run();
  EXPECT_EQ(dropped, 1);
  ASSERT_EQ(received[0].size(), 1u);
  ASSERT_EQ(received[1].size(), 1u);
}

TEST_F(GroupTest, HistoryOverflowTriggersStatusRoundAndRecovers) {
  GroupConfig cfg;
  cfg.history_capacity = 4;  // tiny history to force overflow handling
  boot(3, cfg);
  const int kEach = 10;
  for (NodeId n = 0; n < 3; ++n) start_listener(n, 3 * kEach);
  for (NodeId n = 0; n < 3; ++n) send_from(n, 32, kEach);
  world.sim().run();
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_EQ(received[n].size(), static_cast<std::size_t>(3 * kEach));
  }
  EXPECT_GE(groups[0]->status_rounds(), 1u);
  // Order still identical.
  for (std::size_t i = 0; i < received[0].size(); ++i) {
    EXPECT_EQ(received[1][i].seqno, received[0][i].seqno);
    EXPECT_EQ(received[2][i].seqno, received[0][i].seqno);
  }
}

TEST_F(GroupTest, PayloadContentSurvivesSequencing) {
  boot(2);
  start_listener(0, 1);
  start_listener(1, 1);
  Thread& t = world.kernel(1).create_thread("sender");
  sim::spawn([](KernelGroup& g, Thread& self) -> sim::Co<void> {
    net::Writer w;
    for (std::uint32_t i = 0; i < 500; ++i) w.u32(i * 3);
    co_await g.send(self, kGid, w.take());
  }(*groups[1], t));
  world.sim().run();
  ASSERT_EQ(received[0].size(), 1u);
  net::Reader r(received[0][0].payload);
  for (std::uint32_t i = 0; i < 500; ++i) ASSERT_EQ(r.u32(), i * 3);
}

TEST_F(GroupTest, ThirtyTwoMembersAcrossSegments) {
  boot(32);
  for (NodeId n = 0; n < 32; ++n) start_listener(n, 2);
  send_from(5, 100);
  send_from(29, 100);
  world.sim().run();
  for (NodeId n = 0; n < 32; ++n) {
    ASSERT_EQ(received[n].size(), 2u) << "member " << n;
    EXPECT_EQ(received[n][0].seqno, 1u);
    EXPECT_EQ(received[n][1].seqno, 2u);
    EXPECT_EQ(received[n][0].sender, received[0][0].sender);
  }
}

TEST_F(GroupTest, GroupLatencyIsInPaperBallpark) {
  // Table 1: kernel-space group latency for a null message is 1.44 ms
  // (2 members, sender waits for its own message back from the sequencer on
  // the other processor).
  boot(2, [] {
    GroupConfig cfg;
    cfg.sequencer_index = 1;  // sequencer on the *other* node
    return cfg;
  }());
  start_listener(0, 2);
  start_listener(1, 2);
  sim::Time elapsed = 0;
  Thread& t = world.kernel(0).create_thread("sender");
  sim::spawn([](KernelGroup& g, Thread& self, sim::Simulator& s,
                sim::Time& out) -> sim::Co<void> {
    co_await g.send(self, kGid, net::Payload());  // warm-up (locate)
    const sim::Time t0 = s.now();
    co_await g.send(self, kGid, net::Payload());
    out = s.now() - t0;
  }(*groups[0], t, world.sim(), elapsed));
  world.sim().run();
  EXPECT_GT(elapsed, sim::usec(700));
  EXPECT_LT(elapsed, sim::msec(3));
}

}  // namespace
}  // namespace amoeba
