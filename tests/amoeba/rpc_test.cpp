#include "amoeba/rpc.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "amoeba/world.h"
#include "sim/co.h"

namespace amoeba {
namespace {

constexpr ServiceId kEcho = 7;

// A server loop that echoes `count` requests with a marker byte appended.
sim::Co<void> echo_server(KernelRpc& rpc, Thread& self, int count) {
  for (int i = 0; i < count; ++i) {
    RpcRequestHandle req = co_await rpc.get_request(self, kEcho);
    net::Writer w;
    w.payload(req.payload);
    w.u8(0xEE);
    co_await rpc.put_reply(self, req, w.take());
  }
}

class RpcTest : public ::testing::Test {
 protected:
  RpcTest() {
    world.add_nodes(4);
    for (NodeId n = 0; n < 4; ++n) {
      rpcs.push_back(std::make_unique<KernelRpc>(world.kernel(n)));
    }
  }
  World world;
  std::vector<std::unique_ptr<KernelRpc>> rpcs;
};

TEST_F(RpcTest, RoundTripDeliversRequestAndReply) {
  Thread& server = world.kernel(1).create_thread("server");
  sim::spawn(echo_server(*rpcs[1], server, 1));
  Thread& client = world.kernel(0).create_thread("client");
  RpcResult result;
  sim::spawn([](KernelRpc& rpc, Thread& self, RpcResult& out) -> sim::Co<void> {
    net::Writer w;
    w.u32(0xABCD);
    out = co_await rpc.trans(self, kEcho, w.take());
  }(*rpcs[0], client, result));
  world.sim().run();
  ASSERT_EQ(result.status, RpcStatus::kOk);
  EXPECT_EQ(result.reply.size(), 5u);
  net::Reader r(result.reply);
  EXPECT_EQ(r.u32(), 0xABCDu);
  EXPECT_EQ(r.u8(), 0xEE);
}

TEST_F(RpcTest, SequentialTransactionsReuseTheServer) {
  Thread& server = world.kernel(1).create_thread("server");
  sim::spawn(echo_server(*rpcs[1], server, 5));
  Thread& client = world.kernel(0).create_thread("client");
  int ok = 0;
  sim::spawn([](KernelRpc& rpc, Thread& self, int& done) -> sim::Co<void> {
    for (int i = 0; i < 5; ++i) {
      net::Writer w;
      w.u32(static_cast<std::uint32_t>(i));
      RpcResult r = co_await rpc.trans(self, kEcho, w.take());
      if (r.status == RpcStatus::kOk) ++done;
    }
  }(*rpcs[0], client, ok));
  world.sim().run();
  EXPECT_EQ(ok, 5);
  EXPECT_EQ(rpcs[1]->requests_served(), 5u);
}

TEST_F(RpcTest, ConcurrentClientsAreServedByThreadPool) {
  // Two server threads; three clients issue one call each.
  for (int i = 0; i < 2; ++i) {
    Thread& t = world.kernel(1).create_thread("server");
    sim::spawn(echo_server(*rpcs[1], t, 2));
  }
  int ok = 0;
  for (NodeId n : {0u, 2u, 3u}) {
    Thread& client = world.kernel(n).create_thread("client");
    sim::spawn([](KernelRpc& rpc, Thread& self, int& done) -> sim::Co<void> {
      RpcResult r = co_await rpc.trans(self, kEcho, net::Payload::zeros(16));
      if (r.status == RpcStatus::kOk) ++done;
    }(*rpcs[n], client, ok));
  }
  world.sim().run();
  // 3 calls, 4 server slots: at least 3 served.
  EXPECT_EQ(ok, 3);
}

TEST_F(RpcTest, LargeRequestAndReplyAreFragmented) {
  Thread& server = world.kernel(1).create_thread("server");
  sim::spawn(echo_server(*rpcs[1], server, 1));
  Thread& client = world.kernel(0).create_thread("client");
  RpcResult result;
  sim::spawn([](KernelRpc& rpc, Thread& self, RpcResult& out) -> sim::Co<void> {
    out = co_await rpc.trans(self, kEcho, net::Payload::zeros(8000));
  }(*rpcs[0], client, result));
  world.sim().run();
  ASSERT_EQ(result.status, RpcStatus::kOk);
  EXPECT_EQ(result.reply.size(), 8001u);
}

TEST_F(RpcTest, TimesOutWhenNobodyServes) {
  Thread& client = world.kernel(0).create_thread("client");
  RpcResult result;
  result.status = RpcStatus::kOk;
  sim::spawn([](KernelRpc& rpc, Thread& self, RpcResult& out) -> sim::Co<void> {
    out = co_await rpc.trans(self, 999, net::Payload::zeros(4));
  }(*rpcs[0], client, result));
  world.sim().run();
  EXPECT_EQ(result.status, RpcStatus::kTimeout);
}

TEST_F(RpcTest, RequestLossIsMaskedByRetransmission) {
  Thread& server = world.kernel(1).create_thread("server");
  sim::spawn(echo_server(*rpcs[1], server, 1));
  // Drop the first two data frames on the wire (after the locate exchange).
  int drops = 0;
  world.network().segment(0).set_loss_hook([&](const net::Frame& f) {
    if (f.payload.size() > 100 && drops < 2) {  // only the fat request frames
      ++drops;
      return true;
    }
    return false;
  });
  Thread& client = world.kernel(0).create_thread("client");
  RpcResult result;
  sim::spawn([](KernelRpc& rpc, Thread& self, RpcResult& out) -> sim::Co<void> {
    out = co_await rpc.trans(self, kEcho, net::Payload::zeros(200));
  }(*rpcs[0], client, result));
  world.sim().run();
  ASSERT_EQ(result.status, RpcStatus::kOk);
  EXPECT_EQ(drops, 2);
  EXPECT_GE(rpcs[0]->retransmissions(), 1u);
}

TEST_F(RpcTest, DuplicateRequestsDoNotDoubleExecute) {
  // Count executions server-side; drop the first *reply* so the client
  // retransmits the request against an already-served transaction.
  int executions = 0;
  Thread& server = world.kernel(1).create_thread("server");
  sim::spawn([](KernelRpc& rpc, Thread& self, int& count) -> sim::Co<void> {
    for (int i = 0; i < 3; ++i) {
      RpcRequestHandle req = co_await rpc.get_request(self, kEcho);
      ++count;
      co_await rpc.put_reply(self, req, net::Payload::zeros(300));
    }
  }(*rpcs[1], server, executions));

  bool dropped_reply = false;
  world.network().segment(0).set_loss_hook([&](const net::Frame& f) {
    // The reply is the first large frame from node 1 (mac 2).
    if (!dropped_reply && f.src == 2 && f.payload.size() > 200) {
      dropped_reply = true;
      return true;
    }
    return false;
  });

  Thread& client = world.kernel(0).create_thread("client");
  RpcResult result;
  sim::spawn([](KernelRpc& rpc, Thread& self, RpcResult& out) -> sim::Co<void> {
    out = co_await rpc.trans(self, kEcho, net::Payload::zeros(150));
  }(*rpcs[0], client, result));
  world.sim().run();
  ASSERT_EQ(result.status, RpcStatus::kOk);
  EXPECT_TRUE(dropped_reply);
  EXPECT_EQ(executions, 1);  // at-most-once held
}

TEST_F(RpcTest, PutReplyFromWrongThreadIsRejected) {
  Thread& server = world.kernel(1).create_thread("server");
  Thread& imposter = world.kernel(1).create_thread("imposter");
  bool threw = false;
  sim::spawn([](KernelRpc& rpc, Thread& self, Thread& other,
                bool& caught) -> sim::Co<void> {
    RpcRequestHandle req = co_await rpc.get_request(self, kEcho);
    // The same-thread check fires before any suspension, so the violation is
    // observable by probing the coroutine without awaiting it.
    try {
      sim::Co<void> bad = rpc.put_reply(other, req, net::Payload());
      co_await std::move(bad);
    } catch (const sim::SimError&) {
      caught = true;
    }
    if (caught) co_await rpc.put_reply(self, req, net::Payload());
  }(*rpcs[1], server, imposter, threw));
  Thread& client = world.kernel(0).create_thread("client");
  RpcResult result;
  sim::spawn([](KernelRpc& rpc, Thread& self, RpcResult& out) -> sim::Co<void> {
    out = co_await rpc.trans(self, kEcho, net::Payload::zeros(4));
  }(*rpcs[0], client, result));
  world.sim().run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(result.status, RpcStatus::kOk);
}

TEST_F(RpcTest, NullRpcLatencyIsInPaperBallpark) {
  // Warm the route, then measure: Table 1 reports 1.27 ms for a kernel-space
  // null RPC. The simulation should land within a generous band (exact
  // calibration is asserted by the calibration suite).
  Thread& server = world.kernel(1).create_thread("server");
  sim::spawn(echo_server(*rpcs[1], server, 2));
  Thread& client = world.kernel(0).create_thread("client");
  sim::Time elapsed = 0;
  sim::spawn([](KernelRpc& rpc, Thread& self, sim::Simulator& s,
                sim::Time& out) -> sim::Co<void> {
    (void)co_await rpc.trans(self, kEcho, net::Payload());  // warm route
    const sim::Time t0 = s.now();
    (void)co_await rpc.trans(self, kEcho, net::Payload());
    out = s.now() - t0;
  }(*rpcs[0], client, world.sim(), elapsed));
  world.sim().run();
  EXPECT_GT(elapsed, sim::usec(600));
  EXPECT_LT(elapsed, sim::msec(3));
}

}  // namespace
}  // namespace amoeba
