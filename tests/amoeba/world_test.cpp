// World/topology-level behaviour and the pieces of the cost model that the
// breakdown benchmarks depend on.
#include "amoeba/world.h"

#include <gtest/gtest.h>

#include "sim/co.h"

namespace amoeba {
namespace {

TEST(World, BootsDeterministically) {
  WorldConfig cfg;
  cfg.seed = 7;
  World a(cfg);
  World b(cfg);
  a.add_nodes(4);
  b.add_nodes(4);
  EXPECT_EQ(a.sim().rng().next_u64(), b.sim().rng().next_u64());
}

TEST(World, ThirtyTwoNodePoolHasFourSegments) {
  World w;
  w.add_nodes(32);
  EXPECT_EQ(w.network().segment_count(), 4u);
  EXPECT_EQ(w.node_count(), 32u);
  for (NodeId n = 0; n < 32; ++n) {
    EXPECT_EQ(w.kernel(n).node(), n);
  }
}

TEST(World, AggregateLedgerSumsNodes) {
  World w;
  w.add_nodes(2);
  sim::run(w.sim(), w.kernel(0).charge(sim::Prio::kKernel,
                                       sim::Mechanism::kSignal, sim::usec(5)));
  sim::run(w.sim(), w.kernel(1).charge(sim::Prio::kKernel,
                                       sim::Mechanism::kSignal, sim::usec(7)));
  const sim::Ledger total = w.aggregate_ledger();
  EXPECT_EQ(total.get(sim::Mechanism::kSignal).count, 2u);
  EXPECT_EQ(total.get(sim::Mechanism::kSignal).total, sim::usec(12));
}

TEST(World, UnknownKernelThrows) {
  World w;
  w.add_nodes(1);
  EXPECT_THROW((void)w.kernel(3), sim::SimError);
}

TEST(CostModelDefaults, MatchThePaperQuotes) {
  const CostModel c;
  // "the total overhead of the two context switches is about 140 us"
  EXPECT_EQ(2 * c.context_switch, sim::usec(140));
  // "about 110 us" / "reduces the context switch time to 60 us"
  EXPECT_EQ(c.interrupt_thread_switch, sim::usec(110));
  EXPECT_EQ(c.interrupt_thread_switch_loaded, sim::usec(60));
  // "about 6 us per trap", six register windows
  EXPECT_EQ(c.underflow_trap, sim::usec(6));
  EXPECT_EQ(c.register_windows, 6);
  // header sizes from §4.2/§4.3
  EXPECT_EQ(c.panda_rpc_header, 64u);
  EXPECT_EQ(c.amoeba_rpc_header, 56u);
  EXPECT_EQ(c.panda_group_header, 40u);
  EXPECT_EQ(c.amoeba_group_header, 52u);
  // "an overhead of about 20 us per message" for the duplicated
  // fragmentation layer
  EXPECT_EQ(c.user_fragmentation_layer, sim::usec(20));
}

TEST(CostModelDefaults, WireIsTenMegabit) {
  const net::WireParams wp;
  // 0.8 us per byte.
  EXPECT_EQ(wp.ns_per_byte, 800);
  EXPECT_EQ(wp.mtu, 1500u);
}

}  // namespace
}  // namespace amoeba
