// The asserted version of examples/failure_injection.cpp: drop 10% of all
// Ethernet frames and require both protocol stacks to deliver their
// guarantees anyway — now also proven from the event trace.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "amoeba/world.h"
#include "panda/panda.h"
#include "trace/checker.h"
#include "trace/tracer.h"

namespace {

using amoeba::Thread;
using panda::Binding;

struct Outcome {
  int rpc_ok = 0;
  int rpc_executions = 0;
  std::vector<std::vector<std::uint32_t>> orders;
  std::vector<trace::Event> events;
  sim::Ledger ledger;
};

Outcome run(Binding binding, double loss_rate) {
  amoeba::World world;
  trace::Tracer tracer(world.sim());
  world.add_nodes(4);
  // Same independent loss source as the example: the frame still burns
  // bandwidth, like a real collision/corruption.
  sim::Rng loss_rng(12345);
  world.network().segment(0).set_loss_hook(
      [&loss_rng, loss_rate](const net::Frame&) {
        return loss_rng.bernoulli(loss_rate);
      });

  panda::ClusterConfig cfg;
  cfg.binding = binding;
  cfg.nodes = {0, 1, 2, 3};
  std::vector<std::unique_ptr<panda::Panda>> pandas;
  Outcome out;
  out.orders.resize(4);
  for (amoeba::NodeId i = 0; i < 4; ++i) {
    pandas.push_back(panda::make_panda(world.kernel(i), cfg));
    pandas.back()->set_group_handler(
        [&out, i](Thread&, amoeba::NodeId, std::uint32_t seqno,
                  net::Payload) -> sim::Co<void> {
          out.orders[i].push_back(seqno);
          co_return;
        });
  }
  pandas[1]->set_rpc_handler(
      [&](Thread& upcall, panda::RpcTicket t, net::Payload req) -> sim::Co<void> {
        ++out.rpc_executions;
        co_await pandas[1]->rpc_reply(upcall, t, std::move(req));
      });
  for (auto& p : pandas) p->start();

  Thread& client = world.kernel(0).create_thread("client");
  sim::spawn([](panda::Panda& p, amoeba::World& w, int& ok) -> sim::Co<void> {
    Thread& self = w.kernel(0).create_thread("driver");
    for (int i = 0; i < 20; ++i) {
      panda::RpcReply r = co_await p.rpc(self, 1, net::Payload::zeros(64));
      if (r.status == panda::RpcStatus::kOk) ++ok;
      co_await p.group_send(self, net::Payload::zeros(64));
    }
  }(*pandas[0], world, out.rpc_ok));
  (void)client;
  world.sim().run();

  out.events = tracer.events();
  out.ledger = world.aggregate_ledger();
  return out;
}

class FailureInjection : public ::testing::TestWithParam<Binding> {};

TEST_P(FailureInjection, SurvivesTenPercentFrameLoss) {
  const Outcome out = run(GetParam(), 0.10);

  // Every call completed, and despite retransmissions the server executed
  // each request exactly once.
  EXPECT_EQ(out.rpc_ok, 20);
  EXPECT_EQ(out.rpc_executions, 20);

  // Every member delivered all 20 group messages in the identical order.
  for (int n = 0; n < 4; ++n) {
    ASSERT_EQ(out.orders[n].size(), 20u) << "node " << n;
    EXPECT_EQ(out.orders[n], out.orders[0]) << "node " << n;
  }

  // Something was actually injected: the wire really dropped frames.
  trace::TraceChecker checker(out.events);
  std::size_t drops = 0;
  for (const trace::Event& e : out.events) {
    if (e.kind == trace::EventKind::kFrameDrop) ++drops;
  }
  EXPECT_GT(drops, 0u);

  // And the trace proves all invariants end to end.
  const auto violations = checker.check_all(&out.ledger);
  std::string joined;
  for (const auto& v : violations) joined += v + "\n";
  EXPECT_TRUE(violations.empty()) << joined;
}

INSTANTIATE_TEST_SUITE_P(Bindings, FailureInjection,
                         ::testing::Values(Binding::kKernelSpace,
                                           Binding::kUserSpace),
                         [](const auto& info) {
                           return info.param == Binding::kKernelSpace
                                      ? "KernelSpace"
                                      : "UserSpace";
                         });

}  // namespace
