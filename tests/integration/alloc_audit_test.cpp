// Steady-state allocation audit of the message path (ISSUE 5 satellite).
//
// After a warm-up phase — enough traffic for every Writer arena, buffer pool
// and metrics slab to reach capacity — an 8-byte RPC loop and a 1 MB group
// broadcast must perform ZERO payload-storage allocations per message, on
// both bindings. Payload storage is counted at the acquisition sites
// (net::payload_alloc_stats), so the assertion holds under sanitizers too;
// the global operator-new audit (tests/support/alloc_audit.h) additionally
// bounds total host allocations when its hooks are active.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "amoeba/world.h"
#include "net/buffer.h"
#include "panda/panda.h"
#include "support/alloc_audit.h"

namespace {

using amoeba::Thread;
using panda::Binding;

struct Window {
  net::PayloadAllocStats payload;
  testsupport::AllocCounts global;
};

Window sample() { return Window{net::payload_alloc_stats(), testsupport::alloc_counts()}; }

struct AuditOutcome {
  // RPC phase: [rpc_before, rpc_after) brackets the measured iterations.
  Window rpc_before, rpc_after;
  // Broadcast phase likewise.
  Window bcast_before, bcast_after;
  int rpc_ok = 0;
  std::uint64_t deliveries = 0;
};

// A Writer retires a 64 KiB arena block roughly every ~450 small messages;
// warm-up must push every writer on the path through all eight of its arena
// slots (~3600 messages) before the measured window opens.
constexpr int kRpcWarmup = 6000;
constexpr int kRpcMeasured = 2000;
constexpr int kBcastWarmup = 10;
constexpr int kBcastMeasured = 10;
constexpr std::size_t kBulkBytes = 1 << 20;

AuditOutcome run(Binding binding) {
  amoeba::WorldConfig wc;
  wc.metrics = true;  // the interned-handle path must be allocation-free too
  // A 1 MB message needs ~0.84 s of wire time on the paper's 10 Mbit/s
  // Ethernet — longer than every protocol timeout (50 ms reassembly sweep,
  // 100 ms send retry), so bulk broadcasts would retransmit forever. This
  // test is about HOST allocation behaviour, not the era's wire speed: run
  // the same protocols over a 100x faster link so 1 MB messages fit inside
  // the timeouts and the protocols quiesce.
  wc.network.wire.ns_per_byte = 8;
  // Even then, the receiver's modeled per-byte copy charge (50 ns/byte,
  // ~52 ms/MB of interrupt-priority CPU) exceeds the default 50 ms
  // reassembly window, so give bulk reassembly a comfortable deadline.
  wc.costs.reassembly_timeout = sim::sec(1);
  amoeba::World world(wc);
  world.add_nodes(4);

  panda::ClusterConfig cfg;
  cfg.binding = binding;
  cfg.nodes = {0, 1, 2, 3};
  std::vector<std::unique_ptr<panda::Panda>> pandas;
  AuditOutcome out;
  for (amoeba::NodeId i = 0; i < 4; ++i) {
    pandas.push_back(panda::make_panda(world.kernel(i), cfg));
    pandas.back()->set_group_handler(
        [&out](Thread&, amoeba::NodeId, std::uint32_t,
               net::Payload) -> sim::Co<void> {
          ++out.deliveries;
          co_return;
        });
  }
  pandas[1]->set_rpc_handler(
      [&](Thread& upcall, panda::RpcTicket t, net::Payload req) -> sim::Co<void> {
        co_await pandas[1]->rpc_reply(upcall, t, std::move(req));
      });
  for (auto& p : pandas) p->start();

  sim::spawn([](panda::Panda& p, amoeba::World& w, AuditOutcome& out) -> sim::Co<void> {
    Thread& self = w.kernel(0).create_thread("driver");
    for (int i = 0; i < kRpcWarmup + kRpcMeasured; ++i) {
      if (i == kRpcWarmup) out.rpc_before = sample();
      panda::RpcReply r = co_await p.rpc(self, 1, net::Payload::zeros(8));
      if (r.status == panda::RpcStatus::kOk) ++out.rpc_ok;
    }
    out.rpc_after = sample();

    for (int i = 0; i < kBcastWarmup + kBcastMeasured; ++i) {
      if (i == kBcastWarmup) out.bcast_before = sample();
      co_await p.group_send(self, net::Payload::zeros(kBulkBytes));
      // group_send returns at the sender's own delivery; the other members
      // are still draining their receive queues (the modeled per-byte copy
      // makes a 1 MB delivery take ~52 ms of receiver CPU). Wait for all
      // four members' handlers to consume this round so queued bodies don't
      // accumulate — a real throughput harness paces on delivery completion.
      const std::uint64_t want = 4ull * (i + 1);
      while (out.deliveries < want) co_await sim::delay(w.sim(), sim::msec(1));
    }
    out.bcast_after = sample();
  }(*pandas[0], world, out));
  world.sim().run();
  return out;
}

class AllocAudit : public ::testing::TestWithParam<Binding> {};

TEST_P(AllocAudit, SteadyStateMessagePathAllocatesNoPayloadStorage) {
  const AuditOutcome out = run(GetParam());

  // The traffic actually happened.
  ASSERT_EQ(out.rpc_ok, kRpcWarmup + kRpcMeasured);
  ASSERT_GE(out.deliveries,
            static_cast<std::uint64_t>(4 * (kBcastWarmup + kBcastMeasured)));

  // Tentpole claim: zero payload-storage allocations per message once warm.
  EXPECT_EQ(out.rpc_after.payload.count - out.rpc_before.payload.count, 0u)
      << "8-byte RPC loop allocated payload storage after warm-up";
  EXPECT_EQ(out.bcast_after.payload.count - out.bcast_before.payload.count, 0u)
      << "1 MB group broadcast allocated payload storage after warm-up";

  // When the operator-new hooks are live, also bound host allocations.
  // Small allocations (coroutine frames, event-queue and map nodes — a few
  // hundred per simulated RPC, thousands per fragmented 1 MB broadcast) are
  // per-event machinery, not data-path copies, so the broadcast bound looks
  // only at LARGE requests: a reintroduced bulk copy allocates >= chunk-size
  // blocks and would trip it immediately.
  if (testsupport::alloc_counting_enabled()) {
    const std::uint64_t rpc_news =
        out.rpc_after.global.news - out.rpc_before.global.news;
    const std::uint64_t bcast_large =
        out.bcast_after.global.large_bytes - out.bcast_before.global.large_bytes;
    EXPECT_LT(rpc_news / kRpcMeasured, 600u);
    // Far below one 1 MB copy per broadcast.
    EXPECT_LT(bcast_large / kBcastMeasured, kBulkBytes / 4);
    ::testing::Test::RecordProperty(
        "rpc_news_per_iter", static_cast<int>(rpc_news / kRpcMeasured));
    ::testing::Test::RecordProperty(
        "bcast_large_bytes_per_iter",
        static_cast<int>(bcast_large / kBcastMeasured));
  }
}

INSTANTIATE_TEST_SUITE_P(Bindings, AllocAudit,
                         ::testing::Values(Binding::kKernelSpace,
                                           Binding::kUserSpace),
                         [](const auto& info) {
                           return info.param == Binding::kKernelSpace
                                      ? "KernelSpace"
                                      : "UserSpace";
                         });

}  // namespace
