// The six Orca applications at test sizes: results must match the
// sequential references exactly, for every binding and processor count.
#include <gtest/gtest.h>

#include "apps/ab.h"
#include "apps/asp.h"
#include "apps/leq.h"
#include "apps/rl.h"
#include "apps/sor.h"
#include "apps/tsp.h"

namespace apps {
namespace {

using panda::Binding;

struct Config {
  Binding binding;
  std::size_t processors;
  bool dedicated = false;
};

std::string config_name(const ::testing::TestParamInfo<Config>& info) {
  std::string name = info.param.binding == Binding::kKernelSpace ? "Kernel" : "User";
  name += "P" + std::to_string(info.param.processors);
  if (info.param.dedicated) name += "Dedicated";
  return name;
}

class AppsAllConfigs : public ::testing::TestWithParam<Config> {
 protected:
  RunConfig run_config() const {
    RunConfig rc;
    rc.binding = GetParam().binding;
    rc.processors = GetParam().processors;
    rc.dedicated_sequencer = GetParam().dedicated;
    return rc;
  }
};

TEST_P(AppsAllConfigs, TspFindsTheOptimalTour) {
  TspParams p;
  p.run = run_config();
  p.cities = 10;
  p.work_per_node = sim::usec(50);
  const TspResult r = run_tsp(p);
  EXPECT_EQ(r.best_cost, tsp_reference(p.cities, p.instance_seed));
  EXPECT_EQ(r.jobs, 9u * 8u * 7u);
  EXPECT_GT(r.elapsed, 0);
}

TEST_P(AppsAllConfigs, AspMatchesFloydWarshall) {
  AspParams p;
  p.run = run_config();
  p.n = 64;
  const AspResult r = run_asp(p);
  EXPECT_EQ(r.checksum, asp_reference(p.n, p.instance_seed));
  EXPECT_EQ(r.group_messages, static_cast<std::uint64_t>(p.n));
}

TEST_P(AppsAllConfigs, AbFindsTheBestMove) {
  AbParams p;
  p.run = run_config();
  p.root_moves = 10;
  p.depth = 4;
  p.work_per_node = sim::usec(40);
  const AbResult r = run_ab(p);
  const AbResult ref = ab_reference(p);
  EXPECT_EQ(r.best_score, ref.best_score);
  EXPECT_EQ(r.best_move, ref.best_move);
  // Parallel search overhead can only add nodes, never lose them.
  EXPECT_GE(r.nodes_visited, ref.nodes_visited);
}

TEST_P(AppsAllConfigs, RlConvergesToTheSameLabeling) {
  RlParams p;
  p.run = run_config();
  p.n = 48;
  p.density_pct = 45;
  p.work_per_cell = sim::nsec(500);
  const RlResult r = run_rl(p);
  int ref_iters = 0;
  EXPECT_EQ(r.checksum,
            rl_reference(p.n, p.density_pct, p.instance_seed, &ref_iters));
  EXPECT_EQ(r.iterations, ref_iters);
}

TEST_P(AppsAllConfigs, SorMatchesBitExactly) {
  SorParams p;
  p.run = run_config();
  p.n = 48;
  p.iterations = 12;
  p.work_per_cell = sim::nsec(500);
  const SorResult r = run_sor(p);
  double ref_delta = 0.0;
  EXPECT_EQ(r.checksum, sor_reference(p, &ref_delta));
  EXPECT_DOUBLE_EQ(r.final_delta, ref_delta);
}

TEST_P(AppsAllConfigs, LeqConvergesBitExactly) {
  LeqParams p;
  p.run = run_config();
  p.n = 48;
  p.iterations = 30;
  p.work_per_cell = sim::nsec(200);
  const LeqResult r = run_leq(p);
  double ref_res = 0.0;
  EXPECT_EQ(r.checksum, leq_reference(p, &ref_res));
  EXPECT_LT(r.residual, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AppsAllConfigs,
    ::testing::Values(Config{Binding::kKernelSpace, 1},
                      Config{Binding::kKernelSpace, 4},
                      Config{Binding::kUserSpace, 1},
                      Config{Binding::kUserSpace, 4},
                      Config{Binding::kUserSpace, 5, /*dedicated=*/true}),
    config_name);

// --- Behavioural expectations from §5 ---------------------------------------

TEST(AppsBehaviour, RlUsesGuardedBufferContinuations) {
  RlParams p;
  p.run.binding = Binding::kUserSpace;
  p.run.processors = 4;
  p.n = 48;
  p.density_pct = 45;
  p.work_per_cell = sim::nsec(500);
  const RlResult r = run_rl(p);
  // Remote guarded BufGets routinely block until the producer fills the
  // buffer — the continuation machinery must actually be exercised.
  EXPECT_GT(r.stats.continuations_created, 0u);
  EXPECT_EQ(r.stats.continuations_created, r.stats.continuations_resumed);
}

TEST(AppsBehaviour, LeqIsGroupCommunicationBound) {
  LeqParams p;
  p.run.binding = Binding::kUserSpace;
  p.run.processors = 4;
  p.n = 48;
  p.iterations = 30;
  p.work_per_cell = sim::nsec(200);
  const LeqResult r = run_leq(p);
  EXPECT_EQ(r.group_messages, static_cast<std::uint64_t>(p.iterations) * 4);
  EXPECT_EQ(r.stats.remote_invocations, 0u);  // everything is broadcast
}

TEST(AppsBehaviour, TspBoundIsReplicatedReadMostly) {
  TspParams p;
  p.run.binding = Binding::kUserSpace;
  p.run.processors = 4;
  p.cities = 10;
  p.work_per_node = sim::usec(50);
  const TspResult r = run_tsp(p);
  // Job fetches from nodes other than the queue owner are remote RPCs;
  // bound updates are the only group writes (plus the object creations).
  EXPECT_GT(r.stats.remote_invocations, r.jobs / 2);
  EXPECT_LE(r.stats.group_writes, r.bound_updates + 2);
}

}  // namespace
}  // namespace apps
