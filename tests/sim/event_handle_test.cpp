// Lifecycle tests for the scheduling core's EventHandle: cancellation,
// rescheduling, equal-timestamp FIFO stability under heap churn, and the
// slab's generation-based protection against stale handles.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "sim/require.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace sim {
namespace {

TEST(EventHandle, DefaultConstructedIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.active());
  EXPECT_FALSE(h.cancel());
  EXPECT_FALSE(h.reschedule(usec(1)));
}

TEST(EventHandle, CancelBeforeFiringPreventsExecution) {
  Simulator s;
  bool fired = false;
  EventHandle h = s.after(usec(10), [&] { fired = true; });
  EXPECT_TRUE(h.active());
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.active());
  EXPECT_EQ(s.pending(), 0u);
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.events_executed(), 0u);
  EXPECT_EQ(s.events_cancelled(), 1u);
}

TEST(EventHandle, CancelAfterFiringIsInert) {
  Simulator s;
  int fired = 0;
  EventHandle h = s.after(usec(10), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.active());
  EXPECT_FALSE(h.cancel());
  EXPECT_EQ(s.events_cancelled(), 0u);
}

TEST(EventHandle, DoubleCancelReturnsFalse) {
  Simulator s;
  EventHandle h = s.after(usec(10), [] {});
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.cancel());
  EXPECT_EQ(s.events_cancelled(), 1u);
}

TEST(EventHandle, SelfCancelInsideCallbackIsInert) {
  Simulator s;
  EventHandle h;
  bool cancel_result = true;
  h = s.after(usec(1), [&] { cancel_result = h.cancel(); });
  s.run();
  EXPECT_FALSE(cancel_result);  // the event left the heap before the callback ran
  EXPECT_EQ(s.events_executed(), 1u);
}

TEST(EventHandle, CancelFromAnotherEventCallback) {
  Simulator s;
  bool victim_fired = false;
  EventHandle victim = s.at(usec(20), [&] { victim_fired = true; });
  s.at(usec(10), [&] { EXPECT_TRUE(victim.cancel()); });
  s.run();
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(s.now(), usec(10));  // the cancelled event never advanced time
}

TEST(EventHandle, StaleHandleDoesNotTouchReusedSlot) {
  Simulator s;
  EventHandle first = s.after(usec(10), [] {});
  EXPECT_TRUE(first.cancel());
  // The freed slot is recycled for the next event; the stale handle's
  // generation no longer matches, so it cannot cancel the new occupant.
  bool second_fired = false;
  EventHandle second = s.after(usec(20), [&] { second_fired = true; });
  EXPECT_FALSE(first.cancel());
  EXPECT_FALSE(first.active());
  EXPECT_TRUE(second.active());
  s.run();
  EXPECT_TRUE(second_fired);
}

TEST(EventHandle, RescheduleMovesTheEventBothDirections) {
  Simulator s;
  std::vector<int> order;
  EventHandle later = s.at(usec(10), [&] { order.push_back(1); });
  EventHandle earlier = s.at(usec(40), [&] { order.push_back(2); });
  s.at(usec(20), [&] { order.push_back(3); });
  // Push one event past the middle and pull the other before it.
  EXPECT_TRUE(later.reschedule(usec(30)));   // now fires at t=30
  EXPECT_TRUE(earlier.reschedule(usec(5)));  // now fires at t=5
  s.run();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
  EXPECT_EQ(s.now(), usec(30));
}

TEST(EventHandle, RescheduleIsRelativeToNow) {
  Simulator s;
  Time fired_at = -1;
  EventHandle h = s.at(msec(10), [&] { fired_at = s.now(); });
  s.at(msec(1), [&] { EXPECT_TRUE(h.reschedule(usec(500))); });
  s.run();
  EXPECT_EQ(fired_at, msec(1) + usec(500));
}

TEST(EventHandle, RescheduleActsLikeCancelThenSchedule) {
  // A rescheduled event takes a fresh sequence number: moved onto the same
  // timestamp as other events, it fires after every previously scheduled one.
  Simulator s;
  std::vector<int> order;
  EventHandle moved = s.at(usec(10), [&] { order.push_back(0); });
  s.at(usec(50), [&] { order.push_back(1); });
  s.at(usec(50), [&] { order.push_back(2); });
  EXPECT_TRUE(moved.reschedule(usec(50)));
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

TEST(EventHandle, RescheduleAfterFiringSchedulesNothing) {
  Simulator s;
  int fired = 0;
  EventHandle h = s.after(usec(1), [&] { ++fired; });
  s.run();
  EXPECT_FALSE(h.reschedule(usec(1)));
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventHandle, EqualTimestampFifoSurvivesHeapChurn) {
  // Cancelling events moves heap entries around (the last entry replaces the
  // removed one). Submission order at equal timestamps must still hold.
  Simulator s;
  std::vector<int> order;
  std::vector<EventHandle> doomed;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      const int id = round * 20 + i;
      if (i % 2 == 0) {
        doomed.push_back(s.at(usec(7), [id] { FAIL() << "cancelled " << id; }));
      } else {
        s.at(usec(7), [&order, id] { order.push_back(id); });
      }
    }
    for (EventHandle& h : doomed) EXPECT_TRUE(h.cancel());
    doomed.clear();
  }
  s.run();
  ASSERT_EQ(order.size(), 30u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(EventHandle, PendingCountsOnlyLiveEvents) {
  Simulator s;
  std::array<EventHandle, 4> hs;
  for (std::size_t i = 0; i < hs.size(); ++i) {
    hs[i] = s.after(usec(10 + static_cast<Time>(i)), [] {});
  }
  EXPECT_EQ(s.pending(), 4u);
  hs[1].cancel();
  hs[3].cancel();
  EXPECT_EQ(s.pending(), 2u);
  EXPECT_EQ(s.run(), 2u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(EventHandle, LargeCallablesAreBoxedAndStillWork) {
  // Closures beyond the inline buffer take the heap path of EventFn.
  struct Big {
    std::array<std::uint8_t, 256> blob;
  };
  static_assert(!EventFn::fits_inline<Big>());
  Simulator s;
  Big big;
  big.blob.fill(0x5a);
  int sum = 0;
  EventHandle h = s.after(usec(1), [big, &sum] {
    for (const std::uint8_t b : big.blob) sum += b;
  });
  EXPECT_TRUE(h.active());
  s.run();
  EXPECT_EQ(sum, 256 * 0x5a);
}

TEST(EventHandle, CancelDestroysBoxedCallableWithoutLeaking) {
  // Run under ASan in CI: cancelling a heap-boxed callable must free it.
  Simulator s;
  auto big = std::make_shared<std::array<std::uint8_t, 256>>();
  std::weak_ptr<std::array<std::uint8_t, 256>> watch = big;
  EventHandle h = s.after(usec(1), [keep = std::move(big)] { (void)keep; });
  EXPECT_FALSE(watch.expired());
  EXPECT_TRUE(h.cancel());
  EXPECT_TRUE(watch.expired());
  s.run();
}

TEST(Simulator, AfterRejectsOverflowingDelay) {
  constexpr Time kMax = std::numeric_limits<Time>::max();
  Simulator s;
  // At now() == 0 even the largest delay is representable.
  EventHandle horizon = s.after(kMax, [] {});
  EXPECT_TRUE(horizon.active());
  // Once the clock has advanced, now() + max wraps and must be rejected.
  s.at(usec(1), [&] {
    EXPECT_THROW(s.after(kMax, [] {}), SimError);
    EXPECT_THROW(s.after(kMax - s.now() + 1, [] {}), SimError);
    s.after(kMax - s.now(), [] {});  // the largest legal delay still schedules
  });
  s.run(1);
  EXPECT_EQ(s.now(), usec(1));
  EXPECT_EQ(s.pending(), 2u);
}

// The batched run loop drains heaps of >= 32 entries into a sorted run
// buffer; cancel/reschedule on a *buffered* event must behave exactly like
// the heap path: cancel prevents execution and frees the slot, reschedule
// consumes a fresh sequence number and re-orders against the remaining
// buffered entries. These tests schedule enough events to force the drain
// and then mutate from inside the first callback, when the rest of the
// batch is sitting in the buffer.
TEST(EventHandle, CancelWhileBatchedInRunBuffer) {
  Simulator s;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 64; ++i) {
    handles.push_back(s.at(usec(10 + i), [&order, i] { order.push_back(i); }));
  }
  // Runs first, with events 1..63 already drained into the run buffer.
  s.at(usec(1), [&] {
    EXPECT_TRUE(handles[7].cancel());
    EXPECT_FALSE(handles[7].active());
    EXPECT_FALSE(handles[7].cancel());  // second cancel is inert
  });
  s.run();
  EXPECT_EQ(order.size(), 63u);
  EXPECT_EQ(std::count(order.begin(), order.end(), 7), 0);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(s.events_cancelled(), 1u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(EventHandle, RescheduleWhileBatchedInRunBuffer) {
  Simulator s;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 64; ++i) {
    handles.push_back(s.at(usec(10 + i), [&order, i] { order.push_back(i); }));
  }
  s.at(usec(1), [&] {
    // Move event 5 from its buffered slot to beyond the whole batch: it must
    // leave its buffer position (no double fire) and run last.
    EXPECT_TRUE(handles[5].reschedule(msec(1)));
    EXPECT_TRUE(handles[5].active());
    // Rescheduling to a time that ties a buffered entry orders *after* it:
    // the fresh sequence number loses the (t, seq) tie, same as
    // cancel-then-schedule would.
    EXPECT_TRUE(handles[9].reschedule(usec(20) - s.now()));
  });
  s.run();
  ASSERT_EQ(order.size(), 64u);
  EXPECT_EQ(order.back(), 5);
  // 9 now fires after 10 (equal timestamps, later sequence number).
  const auto at9 = std::find(order.begin(), order.end(), 9);
  const auto at10 = std::find(order.begin(), order.end(), 10);
  EXPECT_LT(at10, at9);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, PendingAndNextEventTimeSeeRunBufferLeftovers) {
  // run_until() stops mid-buffer: the leftovers stay buffered across the
  // call, and the introspection the partitioned driver relies on must keep
  // counting them.
  Simulator s;
  int fired = 0;
  for (int i = 0; i < 64; ++i) {
    s.at(usec(10 + i), [&] { ++fired; });
  }
  s.run_until(usec(20));  // executes 0..10, leaves 53 in the buffer
  EXPECT_EQ(fired, 11);
  EXPECT_EQ(s.pending(), 53u);
  EXPECT_EQ(s.next_event_time(), usec(21));
  s.run();
  EXPECT_EQ(fired, 64);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.next_event_time(), Simulator::kNever);
}

TEST(Simulator, EventsScheduledDuringDrainMergeInExactOrder) {
  // While the drained batch executes, callbacks schedule new events both
  // before and between the remaining buffered timestamps; the two-way merge
  // must interleave them exactly as pop-per-event would.
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 40; ++i) {
    const int tag = 100 + i;
    s.at(usec(10 + 10 * i), [&order, tag] { order.push_back(tag); });
  }
  s.at(usec(10), [&] {
    // Earlier than every remaining buffered event.
    s.at(usec(15), [&order] { order.push_back(1); });
    // Tied with the buffered event at 30us: the buffered one holds the
    // earlier sequence number and must run first.
    s.at(usec(30), [&order] { order.push_back(2); });
  });
  s.run();
  ASSERT_EQ(order.size(), 42u);
  EXPECT_EQ(order[0], 100);  // 10us buffered
  EXPECT_EQ(order[1], 1);    // 15us scheduled mid-drain
  EXPECT_EQ(order[2], 101);  // 20us buffered
  EXPECT_EQ(order[3], 102);  // 30us buffered (earlier seq wins the tie)
  EXPECT_EQ(order[4], 2);    // 30us scheduled mid-drain
}

TEST(Simulator, RescheduleRejectsOverflowingDelay) {
  constexpr Time kMax = std::numeric_limits<Time>::max();
  Simulator s;
  EventHandle h = s.at(msec(1), [] { FAIL() << "should stay parked"; });
  s.at(usec(1), [&] {
    EXPECT_THROW(h.reschedule(kMax), SimError);
    EXPECT_TRUE(h.active());  // a rejected reschedule leaves the event queued
    EXPECT_TRUE(h.reschedule(kMax - s.now()));
  });
  s.run(1);
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_TRUE(h.cancel());
}

}  // namespace
}  // namespace sim
