#include "sim/partition.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/require.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace sim {
namespace {

TEST(Partition, SinglePartitionDelegatesToThePlainEngine) {
  // partitions == 1 must be the exact single-threaded code path: identical
  // event order, clock, and Rng stream as a bare Simulator with the seed.
  Simulator plain(1234);
  PartitionedSimulator part(
      PartitionedSimulator::Config{/*partitions=*/1, /*threads=*/4, 1234});

  std::vector<std::pair<Time, int>> plain_log;
  std::vector<std::pair<Time, int>> part_log;
  const auto load = [](Simulator& s, std::vector<std::pair<Time, int>>& log) {
    for (int i = 0; i < 5; ++i) {
      s.after(usec(10 * (5 - i)), [&s, &log, i] {
        log.emplace_back(s.now(), i);
        if (i == 0) {
          s.after(usec(7), [&s, &log] { log.emplace_back(s.now(), 99); });
        }
      });
    }
  };
  load(plain, plain_log);
  load(part.engine(0), part_log);
  plain.run();
  EXPECT_EQ(part.run(), plain_log.size());
  EXPECT_EQ(part_log, plain_log);
  EXPECT_EQ(part.engine(0).now(), plain.now());
  EXPECT_EQ(part.windows(), 0u);  // no windowed machinery on this path
  EXPECT_EQ(part.engine(0).rng().next_u64(), plain.rng().next_u64());
}

TEST(Partition, SeedDerivationIsPerPartitionAndKeepsEngineZeroExact) {
  PartitionedSimulator part(
      PartitionedSimulator::Config{/*partitions=*/3, /*threads=*/1, 77});
  Simulator reference(77);
  EXPECT_EQ(part.engine(0).rng().next_u64(), reference.rng().next_u64());
  const std::uint64_t a = part.engine(1).rng().next_u64();
  const std::uint64_t b = part.engine(2).rng().next_u64();
  EXPECT_NE(a, b);  // independent streams
}

TEST(Partition, CrossPartitionMessagesMergeByTimeSourceSeq) {
  PartitionedSimulator part(
      PartitionedSimulator::Config{/*partitions=*/3, /*threads=*/1, 42});
  part.set_lookahead(usec(10));
  // Posts arrive out of order from two sources; the destination must execute
  // them sorted by (time, source partition, per-source post order).
  std::vector<int> order;
  part.post(2, 0, usec(5), EventFn([&order] { order.push_back(1); }));  // t=5 src=2
  part.post(1, 0, usec(5), EventFn([&order] { order.push_back(2); }));  // t=5 src=1
  part.post(1, 0, usec(3), EventFn([&order] { order.push_back(3); }));  // t=3 src=1
  part.post(2, 0, usec(5), EventFn([&order] { order.push_back(4); }));  // t=5 src=2 seq+1
  part.post(1, 0, usec(5), EventFn([&order] { order.push_back(5); }));  // t=5 src=1 seq+1
  EXPECT_EQ(part.cross_posts(), 5u);
  part.run();
  // t=3 first; then the t=5 group: src 1 (post order 2, 5), then src 2
  // (post order 1, 4).
  EXPECT_EQ(order, (std::vector<int>{3, 2, 5, 1, 4}));
}

TEST(Partition, SamePartitionPostSchedulesDirectly) {
  PartitionedSimulator part(
      PartitionedSimulator::Config{/*partitions=*/2, /*threads=*/1, 42});
  part.set_lookahead(usec(10));
  bool ran = false;
  part.post(1, 1, usec(4), EventFn([&ran] { ran = true; }));
  EXPECT_EQ(part.cross_posts(), 0u);  // no mailbox involved
  EXPECT_EQ(part.engine(1).pending(), 1u);
  part.run();
  EXPECT_TRUE(ran);
}

TEST(Partition, ThreadCountNeverChangesResults) {
  // A deterministic cross-partition ping-pong: each hop re-posts to the
  // other partition at now + lookahead. Per-partition logs (no shared
  // state) must be identical for any worker-team size.
  const auto run_once = [](unsigned threads) {
    PartitionedSimulator part(
        PartitionedSimulator::Config{/*partitions=*/2, threads, 7});
    part.set_lookahead(usec(10));
    auto log = std::make_unique<std::vector<std::pair<Time, unsigned>>[]>(2);
    struct Hop {
      PartitionedSimulator* ps;
      std::vector<std::pair<Time, unsigned>>* log;
      int left;
      void operator()(unsigned here) const {
        Simulator& eng = ps->engine(here);
        log[here].emplace_back(eng.now(), here);
        if (left == 0) return;
        const unsigned next = 1 - here;
        ps->post(here, next, eng.now() + usec(10),
                 EventFn([h = Hop{ps, log, left - 1}, next] { h(next); }));
      }
    };
    part.engine(0).at(usec(1), [h = Hop{&part, log.get(), 20}] { h(0); });
    part.run();
    std::vector<std::pair<Time, unsigned>> flat;
    for (int p = 0; p < 2; ++p) {
      flat.insert(flat.end(), log[p].begin(), log[p].end());
    }
    return std::make_pair(flat, part.windows());
  };
  const auto [log1, windows1] = run_once(1);
  const auto [log2, windows2] = run_once(2);
  const auto [log4, windows4] = run_once(4);
  EXPECT_EQ(log1.size(), 21u);
  EXPECT_EQ(log1, log2);
  EXPECT_EQ(log1, log4);
  EXPECT_EQ(windows1, windows2);
  EXPECT_EQ(windows1, windows4);
  EXPECT_GT(windows1, 0u);
}

TEST(Partition, RunUntilAdvancesEveryEngineClock) {
  PartitionedSimulator part(
      PartitionedSimulator::Config{/*partitions=*/2, /*threads=*/1, 42});
  part.set_lookahead(usec(10));
  int ran = 0;
  part.engine(0).at(usec(50), [&ran] { ++ran; });
  part.engine(1).at(usec(300), [&ran] { ++ran; });  // beyond the horizon
  part.run_until(usec(200));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(part.engine(0).now(), usec(200));
  EXPECT_EQ(part.engine(1).now(), usec(200));
  EXPECT_EQ(part.engine(1).pending(), 1u);  // still queued past the horizon
}

TEST(Partition, MultiPartitionRunRequiresLookahead) {
  PartitionedSimulator part(
      PartitionedSimulator::Config{/*partitions=*/2, /*threads=*/1, 42});
  part.engine(0).at(usec(1), [] {});
  EXPECT_THROW(part.run(), SimError);
}

TEST(Partition, CrossPostInsideTheWindowViolatesConservativeSafety) {
  // An event that claims influence on another partition sooner than the
  // lookahead means the topology lied about its minimum latency; the driver
  // must refuse rather than silently produce a schedule-dependent result.
  PartitionedSimulator part(
      PartitionedSimulator::Config{/*partitions=*/2, /*threads=*/1, 42});
  part.set_lookahead(usec(10));
  part.engine(0).at(usec(1), [&part] {
    part.post(0, 1, part.engine(0).now(), EventFn([] {}));  // zero latency!
  });
  EXPECT_THROW(part.run(), SimError);
}

}  // namespace
}  // namespace sim
