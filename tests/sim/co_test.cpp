#include "sim/co.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace sim {
namespace {

Co<int> answer() { co_return 42; }

Co<int> add(Simulator& s, int a, int b) {
  co_await delay(s, usec(10));
  co_return a + b;
}

Co<int> nested(Simulator& s) {
  const int x = co_await add(s, 1, 2);
  const int y = co_await add(s, x, 10);
  co_return y;
}

TEST(Co, ReturnsValue) {
  Simulator s;
  EXPECT_EQ(run(s, answer()), 42);
}

TEST(Co, DelaysAdvanceSimulatedTime) {
  Simulator s;
  EXPECT_EQ(run(s, add(s, 2, 3)), 5);
  EXPECT_EQ(s.now(), usec(10));
}

TEST(Co, NestedAwaitsCompose) {
  Simulator s;
  EXPECT_EQ(run(s, nested(s)), 13);
  EXPECT_EQ(s.now(), usec(20));
}

Co<void> thrower(Simulator& s) {
  co_await delay(s, usec(1));
  throw std::runtime_error("boom");
}

Co<void> rethrower(Simulator& s) {
  co_await thrower(s);  // should propagate
}

TEST(Co, ExceptionsPropagateToRunner) {
  Simulator s;
  EXPECT_THROW(run(s, thrower(s)), std::runtime_error);
}

TEST(Co, ExceptionsPropagateThroughNestedAwaits) {
  Simulator s;
  EXPECT_THROW(run(s, rethrower(s)), std::runtime_error);
}

Co<void> append_after(Simulator& s, std::vector<int>& log, Time d, int tag) {
  co_await delay(s, d);
  log.push_back(tag);
}

TEST(Co, SpawnedActivitiesInterleaveByTime) {
  Simulator s;
  std::vector<int> log;
  spawn(append_after(s, log, usec(30), 3));
  spawn(append_after(s, log, usec(10), 1));
  spawn(append_after(s, log, usec(20), 2));
  s.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

Co<void> zero_delay_chain(Simulator& s, std::vector<std::string>& log, std::string name) {
  log.push_back(name + ":start");
  co_await yield(s);
  log.push_back(name + ":end");
}

TEST(Co, YieldIsDeterministicFifo) {
  Simulator s;
  std::vector<std::string> log;
  spawn(zero_delay_chain(s, log, "a"));
  spawn(zero_delay_chain(s, log, "b"));
  s.run();
  // Both run to their first suspension at spawn; resumptions are FIFO.
  EXPECT_EQ(log, (std::vector<std::string>{"a:start", "b:start", "a:end", "b:end"}));
}

TEST(Co, RunFailsIfQueueDrainsFirst) {
  Simulator s;
  // A coroutine that waits forever on an event that never comes.
  struct Never {
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    void await_resume() const noexcept {}
  };
  auto forever = []() -> Co<void> { co_await Never{}; };
  EXPECT_THROW(run(s, forever()), SimError);
}

Co<int> deep(Simulator& s, int depth) {
  if (depth == 0) co_return 0;
  const int below = co_await deep(s, depth - 1);
  co_return below + 1;
}

TEST(Co, DeepRecursionOfAwaitsWorks) {
  Simulator s;
  EXPECT_EQ(run(s, deep(s, 2000)), 2000);
}

Co<std::string> moves_value() {
  std::string big(1000, 'x');
  co_return big;
}

TEST(Co, MoveOnlyResultPathWorks) {
  Simulator s;
  EXPECT_EQ(run(s, moves_value()).size(), 1000u);
}

// Regression test for the GCC-12 aggregate-awaiter miscompile: a temporary
// awaiter with a nontrivially-destructible member (here a shared_ptr) used
// directly in a co_await expression was destroyed twice unless the awaiter
// type has a user-declared constructor. All project awaiters follow that
// rule; this test exercises the pattern end-to-end under the same shape that
// originally crashed (suspend via an event, resume from the event queue).
namespace awaiter_lifetime {

struct TrackedAwaiter {
  TrackedAwaiter(Simulator& s, std::shared_ptr<int> p)
      : simulator(s), payload(std::move(p)) {}
  Simulator& simulator;
  std::shared_ptr<int> payload;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    simulator.after(usec(10), [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

Co<void> awaits_temporary(Simulator& s, std::weak_ptr<int>& observer) {
  auto payload = std::make_shared<int>(7);
  observer = payload;
  co_await TrackedAwaiter(s, std::move(payload));
}

}  // namespace awaiter_lifetime

TEST(Co, AwaiterLifetime) {
  Simulator s;
  std::weak_ptr<int> observer;
  spawn(awaiter_lifetime::awaits_temporary(s, observer));
  EXPECT_FALSE(observer.expired());  // held by the suspended awaiter
  s.run();
  EXPECT_TRUE(observer.expired());  // released exactly once at completion
}

TEST(Co, ManyConcurrentActivities) {
  Simulator s;
  int completed = 0;
  auto worker = [](Simulator& sim, int i, int& done) -> Co<void> {
    co_await delay(sim, usec(i % 17));
    co_await delay(sim, usec(i % 5));
    ++done;
  };
  for (int i = 0; i < 1000; ++i) spawn(worker(s, i, completed));
  s.run();
  EXPECT_EQ(completed, 1000);
}

}  // namespace
}  // namespace sim
