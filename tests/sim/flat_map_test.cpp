// FlatMap / Slab / SlabMap (sim/flat_map.h): the dense containers under the
// protocol layers' per-packet state. The properties the call sites rely on:
// probe chains stay intact across backward-shift deletion, rehash preserves
// every entry, Slab addresses never move, and layout is a pure function of
// the operation sequence (determinism).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "sim/flat_map.h"

namespace sim {
namespace {

TEST(FlatMap, InsertFindErase) {
  FlatMap<std::uint32_t, std::string> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7), nullptr);
  m[7] = "seven";
  m[9] = "nine";
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), "seven");
  EXPECT_EQ(m.size(), 2u);
  auto [v, fresh] = m.try_emplace(7);
  EXPECT_FALSE(fresh);
  EXPECT_EQ(*v, "seven");
  EXPECT_TRUE(m.erase(7));
  EXPECT_FALSE(m.erase(7));
  EXPECT_EQ(m.find(7), nullptr);
  ASSERT_NE(m.find(9), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, AgreesWithStdMapUnderRandomChurn) {
  // Fuzz against std::map through growth, shrink, and heavy deletion — the
  // regime where backward-shift bugs corrupt probe chains.
  FlatMap<std::uint64_t, std::uint64_t> m;
  std::map<std::uint64_t, std::uint64_t> ref;
  std::mt19937_64 rng(42);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng() % 512;  // force collisions and reuse
    switch (rng() % 3) {
      case 0:
        m[key] = i;
        ref[key] = static_cast<std::uint64_t>(i);
        break;
      case 1:
        EXPECT_EQ(m.erase(key), ref.erase(key) > 0);
        break;
      case 2: {
        const std::uint64_t* got = m.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(got != nullptr, it != ref.end()) << "key " << key;
        if (got) EXPECT_EQ(*got, it->second);
        break;
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  // Full contents must match at the end.
  std::size_t seen = 0;
  m.for_each([&](const std::uint64_t& k, std::uint64_t& v) {
    ++seen;
    const auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
  });
  EXPECT_EQ(seen, ref.size());
}

TEST(FlatMap, EraseIfRemovesExactlyTheMatches) {
  FlatMap<std::uint32_t, std::uint32_t> m;
  for (std::uint32_t k = 0; k < 100; ++k) m[k] = k;
  const std::size_t removed =
      m.erase_if([](const std::uint32_t& k, std::uint32_t&) { return k % 3 == 0; });
  EXPECT_EQ(removed, 34u);
  EXPECT_EQ(m.size(), 66u);
  for (std::uint32_t k = 0; k < 100; ++k) {
    EXPECT_EQ(m.find(k) != nullptr, k % 3 != 0) << k;
  }
}

TEST(FlatMap, LayoutIsDeterministic) {
  // Two maps fed the identical operation sequence iterate identically —
  // the property that keeps flat state out of the trace fixtures' way.
  FlatMap<std::uint64_t, int> a;
  FlatMap<std::uint64_t, int> b;
  for (int i = 0; i < 300; ++i) {
    a[static_cast<std::uint64_t>(i * 7)] = i;
    b[static_cast<std::uint64_t>(i * 7)] = i;
    if (i % 3 == 0) {
      a.erase(static_cast<std::uint64_t>(i * 7 / 2));
      b.erase(static_cast<std::uint64_t>(i * 7 / 2));
    }
  }
  std::vector<std::uint64_t> order_a;
  std::vector<std::uint64_t> order_b;
  a.for_each([&](const std::uint64_t& k, int&) { order_a.push_back(k); });
  b.for_each([&](const std::uint64_t& k, int&) { order_b.push_back(k); });
  EXPECT_EQ(order_a, order_b);
}

TEST(Slab, AddressesAreStableAcrossGrowthAndReuse) {
  Slab<std::string> slab;
  std::vector<std::uint32_t> idx;
  std::vector<const std::string*> addr;
  for (int i = 0; i < 500; ++i) {  // spans many chunks
    idx.push_back(slab.emplace(std::to_string(i)));
    addr.push_back(&slab[idx.back()]);
  }
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(&slab[idx[i]], addr[i]);
    EXPECT_EQ(slab[idx[i]], std::to_string(i));
  }
  // Free-list reuse: erased slots come back, everything else stays put.
  slab.erase(idx[10]);
  slab.erase(idx[20]);
  EXPECT_EQ(slab.size(), 498u);
  const std::uint32_t r1 = slab.emplace("reused");
  const std::uint32_t r2 = slab.emplace("reused2");
  EXPECT_TRUE(r1 == idx[10] || r1 == idx[20]);
  EXPECT_TRUE((r2 == idx[10] || r2 == idx[20]) && r2 != r1);
  EXPECT_EQ(&slab[idx[499]], addr[499]);
}

TEST(SlabMap, StablePointersSurviveInserts) {
  SlabMap<std::uint32_t, std::vector<int>> m;
  auto [first, fresh] = m.try_emplace(1);
  ASSERT_TRUE(fresh);
  first->push_back(42);
  // Hammer in enough entries to rehash the index several times.
  for (std::uint32_t k = 2; k < 400; ++k) m[k].push_back(static_cast<int>(k));
  EXPECT_EQ(m.find(1), first);  // the slab never moved it
  EXPECT_EQ((*first)[0], 42);
  EXPECT_TRUE(m.erase(1));
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_EQ(m.size(), 398u);
  std::size_t count = 0;
  m.for_each([&](const std::uint32_t& k, std::vector<int>& v) {
    ++count;
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], static_cast<int>(k));
  });
  EXPECT_EQ(count, 398u);
}

TEST(SlabMap, TryEmplaceForwardsConstructorArguments) {
  SlabMap<std::uint32_t, std::string> m;
  auto [v, fresh] = m.try_emplace(5, "hello");
  EXPECT_TRUE(fresh);
  EXPECT_EQ(*v, "hello");
  auto [again, fresh2] = m.try_emplace(5, "ignored");
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(*again, "hello");
  EXPECT_EQ(v, again);
}

}  // namespace
}  // namespace sim
