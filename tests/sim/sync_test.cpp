#include "sim/sync.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "sim/co.h"
#include "sim/simulator.h"

namespace sim {
namespace {

TEST(CondVar, NotifyOneWakesInFifoOrder) {
  Simulator s;
  CondVar cv(s);
  std::vector<int> woke;
  auto waiter = [&](int id) -> Co<void> {
    co_await cv.wait();
    woke.push_back(id);
  };
  spawn(waiter(1));
  spawn(waiter(2));
  spawn(waiter(3));
  s.run();
  EXPECT_EQ(cv.waiter_count(), 3u);
  cv.notify_one();
  cv.notify_one();
  cv.notify_one();
  s.run();
  EXPECT_EQ(woke, (std::vector<int>{1, 2, 3}));
}

TEST(CondVar, NotifyAllWakesEveryone) {
  Simulator s;
  CondVar cv(s);
  int woke = 0;
  auto waiter = [&]() -> Co<void> {
    co_await cv.wait();
    ++woke;
  };
  for (int i = 0; i < 10; ++i) spawn(waiter());
  s.run();
  cv.notify_all();
  s.run();
  EXPECT_EQ(woke, 10);
  EXPECT_EQ(cv.waiter_count(), 0u);
}

TEST(CondVar, NotifyWithNoWaitersIsANoop) {
  Simulator s;
  CondVar cv(s);
  cv.notify_one();
  cv.notify_all();
  s.run();
  SUCCEED();
}

TEST(CondVar, WaitForTimesOut) {
  Simulator s;
  CondVar cv(s);
  std::optional<bool> result;
  auto waiter = [&]() -> Co<void> { result = co_await cv.wait_for(usec(100)); };
  spawn(waiter());
  s.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(*result);
  EXPECT_EQ(s.now(), usec(100));
  EXPECT_EQ(cv.waiter_count(), 0u);  // timed-out waiter removed from the list
}

TEST(CondVar, WaitForNotifiedBeforeTimeout) {
  Simulator s;
  CondVar cv(s);
  std::optional<bool> result;
  Time resumed_at = -1;
  auto waiter = [&]() -> Co<void> {
    result = co_await cv.wait_for(msec(10));
    resumed_at = s.now();
  };
  spawn(waiter());
  s.after(usec(50), [&] { cv.notify_one(); });
  s.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(*result);
  // Resumed promptly at the notify, not at the (stale, no-op) timeout event.
  EXPECT_EQ(resumed_at, usec(50));
}

TEST(CondVar, TimeoutAfterNotifyDoesNotDoubleResume) {
  Simulator s;
  CondVar cv(s);
  int resumes = 0;
  auto waiter = [&]() -> Co<void> {
    (void)co_await cv.wait_for(usec(100));
    ++resumes;
  };
  spawn(waiter());
  s.after(usec(10), [&] { cv.notify_one(); });
  s.run();  // runs past the timeout point too
  EXPECT_EQ(resumes, 1);
}

TEST(Mutex, ProvidesMutualExclusion) {
  Simulator s;
  Mutex m(s);
  int in_critical = 0;
  int max_in_critical = 0;
  auto worker = [&]() -> Co<void> {
    co_await m.lock();
    ++in_critical;
    max_in_critical = std::max(max_in_critical, in_critical);
    co_await delay(s, usec(10));
    --in_critical;
    m.unlock();
  };
  for (int i = 0; i < 5; ++i) spawn(worker());
  s.run();
  EXPECT_EQ(max_in_critical, 1);
  EXPECT_EQ(m.acquisitions(), 5u);
  EXPECT_EQ(m.contentions(), 4u);
}

TEST(Mutex, UnlockWithoutLockThrows) {
  Simulator s;
  Mutex m(s);
  EXPECT_THROW(m.unlock(), SimError);
}

TEST(Mutex, LockGuardReleasesOnScopeExit) {
  Simulator s;
  Mutex m(s);
  auto worker = [&]() -> Co<void> {
    {
      Lock guard = co_await Lock::acquire(m);
      EXPECT_TRUE(m.locked());
    }
    EXPECT_FALSE(m.locked());
  };
  run(s, worker());
}

TEST(Semaphore, LimitsConcurrency) {
  Simulator s;
  Semaphore sem(s, 2);
  int active = 0;
  int max_active = 0;
  auto worker = [&]() -> Co<void> {
    co_await sem.acquire();
    ++active;
    max_active = std::max(max_active, active);
    co_await delay(s, usec(10));
    --active;
    sem.release();
  };
  for (int i = 0; i < 6; ++i) spawn(worker());
  s.run();
  EXPECT_EQ(max_active, 2);
  EXPECT_EQ(sem.count(), 2);
}

TEST(Channel, DeliversInFifoOrder) {
  Simulator s;
  Channel<int> ch(s);
  std::vector<int> received;
  auto consumer = [&]() -> Co<void> {
    for (int i = 0; i < 5; ++i) received.push_back(co_await ch.recv());
  };
  auto producer = [&]() -> Co<void> {
    for (int i = 0; i < 5; ++i) {
      co_await delay(s, usec(1));
      co_await ch.send(i);
    }
  };
  spawn(consumer());
  spawn(producer());
  s.run();
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, BoundedSendBlocksUntilSpace) {
  Simulator s;
  Channel<int> ch(s, 2);
  Time producer_done = -1;
  auto producer = [&]() -> Co<void> {
    for (int i = 0; i < 3; ++i) co_await ch.send(i);
    producer_done = s.now();
  };
  auto consumer = [&]() -> Co<void> {
    co_await delay(s, msec(1));
    (void)co_await ch.recv();
  };
  spawn(producer());
  spawn(consumer());
  s.run();
  // The third send had to wait for the consumer at 1 ms.
  EXPECT_EQ(producer_done, msec(1));
}

TEST(Channel, RecvForTimesOutWhenEmpty) {
  Simulator s;
  Channel<int> ch(s);
  std::optional<std::optional<int>> result;
  auto consumer = [&]() -> Co<void> { result = co_await ch.recv_for(usec(200)); };
  spawn(consumer());
  s.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->has_value());
  EXPECT_EQ(s.now(), usec(200));
}

TEST(Channel, RecvForGetsValueIfAvailable) {
  Simulator s;
  Channel<int> ch(s);
  EXPECT_TRUE(ch.try_send(7));
  std::optional<std::optional<int>> result;
  auto consumer = [&]() -> Co<void> { result = co_await ch.recv_for(usec(200)); };
  spawn(consumer());
  s.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->has_value());
  EXPECT_EQ(**result, 7);
}

TEST(Channel, TryOperations) {
  Simulator s;
  Channel<int> ch(s, 1);
  EXPECT_FALSE(ch.try_recv().has_value());
  EXPECT_TRUE(ch.try_send(1));
  EXPECT_FALSE(ch.try_send(2));  // full
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_TRUE(ch.empty());
}

}  // namespace
}  // namespace sim
