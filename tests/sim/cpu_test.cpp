#include "sim/cpu.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/co.h"
#include "sim/simulator.h"

namespace sim {
namespace {

TEST(Cpu, SingleJobTakesItsDuration) {
  Simulator s;
  Cpu cpu(s);
  auto job = [&]() -> Co<void> { co_await cpu.run(usec(100), Prio::kUser); };
  run(s, job());
  EXPECT_EQ(s.now(), usec(100));
  EXPECT_EQ(cpu.busy_time(Prio::kUser), usec(100));
  EXPECT_TRUE(cpu.idle());
}

TEST(Cpu, ZeroDurationCompletesImmediately) {
  Simulator s;
  Cpu cpu(s);
  auto job = [&]() -> Co<void> { co_await cpu.run(0, Prio::kUser); };
  run(s, job());
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(cpu.jobs_completed(), 0u);  // never entered the scheduler
}

TEST(Cpu, EqualPrioritySerializesFifo) {
  Simulator s;
  Cpu cpu(s);
  std::vector<std::pair<int, Time>> done;
  auto job = [&](int id) -> Co<void> {
    co_await cpu.run(usec(100), Prio::kUser);
    done.emplace_back(id, s.now());
  };
  spawn(job(1));
  spawn(job(2));
  spawn(job(3));
  s.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], std::make_pair(1, usec(100)));
  EXPECT_EQ(done[1], std::make_pair(2, usec(200)));
  EXPECT_EQ(done[2], std::make_pair(3, usec(300)));
  EXPECT_EQ(cpu.preemptions(), 0u);
}

TEST(Cpu, HigherPriorityPreempts) {
  Simulator s;
  Cpu cpu(s);
  Time user_done = -1;
  Time intr_done = -1;
  auto user_job = [&]() -> Co<void> {
    co_await cpu.run(usec(1000), Prio::kUser);
    user_done = s.now();
  };
  auto intr_job = [&]() -> Co<void> {
    co_await delay(s, usec(300));
    co_await cpu.run(usec(50), Prio::kInterrupt);
    intr_done = s.now();
  };
  spawn(user_job());
  spawn(intr_job());
  s.run();
  EXPECT_EQ(intr_done, usec(350));   // ran immediately on arrival
  EXPECT_EQ(user_done, usec(1050));  // stretched by the interrupt
  EXPECT_EQ(cpu.preemptions(), 1u);
  EXPECT_EQ(cpu.busy_time(Prio::kUser), usec(1000));
  EXPECT_EQ(cpu.busy_time(Prio::kInterrupt), usec(50));
}

TEST(Cpu, EqualPriorityDoesNotPreempt) {
  Simulator s;
  Cpu cpu(s);
  Time second_done = -1;
  auto first = [&]() -> Co<void> { co_await cpu.run(usec(1000), Prio::kKernel); };
  auto second = [&]() -> Co<void> {
    co_await delay(s, usec(100));
    co_await cpu.run(usec(10), Prio::kKernel);
    second_done = s.now();
  };
  spawn(first());
  spawn(second());
  s.run();
  EXPECT_EQ(second_done, usec(1010));  // waited for the first to finish
  EXPECT_EQ(cpu.preemptions(), 0u);
}

TEST(Cpu, NestedPreemption) {
  Simulator s;
  Cpu cpu(s);
  Time user_done = -1;
  Time kernel_done = -1;
  Time intr_done = -1;
  spawn([](Simulator& sim, Cpu& c, Time& done) -> Co<void> {
    co_await c.run(usec(1000), Prio::kUser);
    done = sim.now();
  }(s, cpu, user_done));
  spawn([](Simulator& sim, Cpu& c, Time& done) -> Co<void> {
    co_await delay(sim, usec(100));
    co_await c.run(usec(200), Prio::kKernel);
    done = sim.now();
  }(s, cpu, kernel_done));
  spawn([](Simulator& sim, Cpu& c, Time& done) -> Co<void> {
    co_await delay(sim, usec(150));
    co_await c.run(usec(30), Prio::kInterrupt);
    done = sim.now();
  }(s, cpu, intr_done));
  s.run();
  EXPECT_EQ(intr_done, usec(180));
  EXPECT_EQ(kernel_done, usec(330));   // 100..150 ran, +30 interrupt, resumes 180..330
  EXPECT_EQ(user_done, usec(1230));    // the full 1000 us, displaced by 230 us
  EXPECT_EQ(cpu.preemptions(), 2u);
}

TEST(Cpu, PreemptedJobResumesAtFrontOfItsClass) {
  Simulator s;
  Cpu cpu(s);
  std::vector<int> completion_order;
  // Job A (user) starts; interrupt arrives; job B (user) queued during the
  // interrupt must run after A resumes and finishes.
  spawn([](Simulator& sim, Cpu& c, std::vector<int>& order) -> Co<void> {
    co_await c.run(usec(500), Prio::kUser);
    order.push_back(1);
    (void)sim;
  }(s, cpu, completion_order));
  spawn([](Simulator& sim, Cpu& c, std::vector<int>& order) -> Co<void> {
    co_await delay(sim, usec(100));
    co_await c.run(usec(20), Prio::kInterrupt);
    order.push_back(0);
  }(s, cpu, completion_order));
  spawn([](Simulator& sim, Cpu& c, std::vector<int>& order) -> Co<void> {
    co_await delay(sim, usec(110));  // during the interrupt
    co_await c.run(usec(500), Prio::kUser);
    order.push_back(2);
  }(s, cpu, completion_order));
  s.run();
  EXPECT_EQ(completion_order, (std::vector<int>{0, 1, 2}));
}

TEST(Cpu, ThreadPreemptionEpisodesAreCoalesced) {
  // A kUser job displaced once but overtaken by THREE thread-level jobs
  // counts ONE resume episode (one suspend/resume of the thread), while a
  // pure interrupt preemption counts none.
  Simulator s;
  Cpu cpu(s);
  std::uint64_t episodes = 99;
  spawn([](Cpu& c, std::uint64_t& out) -> Co<void> {
    co_await c.run(usec(1000), Prio::kUser, &out);
  }(cpu, episodes));
  // Burst of thread-level work at t=100: all three jobs are queued before
  // the user job can resume, so this is ONE suspend/resume episode.
  for (int i = 0; i < 3; ++i) {
    spawn([](Simulator& sim, Cpu& c) -> Co<void> {
      co_await delay(sim, usec(100));
      co_await c.run(usec(10), Prio::kKernel);
    }(s, cpu));
  }
  s.run();
  EXPECT_EQ(episodes, 1u);

  std::uint64_t intr_only = 99;
  Simulator s2;
  Cpu cpu2(s2);
  spawn([](Cpu& c, std::uint64_t& out) -> Co<void> {
    co_await c.run(usec(1000), Prio::kUser, &out);
  }(cpu2, intr_only));
  spawn([](Simulator& sim, Cpu& c) -> Co<void> {
    co_await delay(sim, usec(100));
    co_await c.run(usec(10), Prio::kInterrupt);
  }(s2, cpu2));
  s2.run();
  EXPECT_EQ(intr_only, 0u);
}

TEST(Cpu, UtilizationUnderLoadIsFull) {
  Simulator s;
  Cpu cpu(s);
  for (int i = 0; i < 50; ++i) {
    spawn([](Cpu& c) -> Co<void> { co_await c.run(usec(10), Prio::kUser); }(cpu));
  }
  s.run();
  EXPECT_EQ(s.now(), usec(500));
  EXPECT_EQ(cpu.total_busy_time(), usec(500));
  EXPECT_EQ(cpu.jobs_completed(), 50u);
}

}  // namespace
}  // namespace sim
