#include "sim/timer.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/time.h"

namespace sim {
namespace {

TEST(Timer, FiresAfterDelay) {
  Simulator s;
  Timer t(s);
  Time fired_at = -1;
  t.schedule(usec(250), [&] { fired_at = s.now(); });
  EXPECT_TRUE(t.pending());
  s.run();
  EXPECT_EQ(fired_at, usec(250));
  EXPECT_FALSE(t.pending());
}

TEST(Timer, CancelPreventsFiring) {
  Simulator s;
  Timer t(s);
  bool fired = false;
  t.schedule(usec(100), [&] { fired = true; });
  t.cancel();
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, RescheduleSupersedesPreviousShot) {
  Simulator s;
  Timer t(s);
  int which = 0;
  t.schedule(usec(100), [&] { which = 1; });
  t.schedule(usec(200), [&] { which = 2; });
  s.run();
  EXPECT_EQ(which, 2);
  EXPECT_EQ(s.now(), usec(200));
}

TEST(Timer, RescheduleFromWithinCallback) {
  Simulator s;
  Timer t(s);
  int fires = 0;
  std::function<void()> cb = [&] {
    if (++fires < 3) t.schedule(usec(10), cb);
  };
  t.schedule(usec(10), cb);
  s.run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(s.now(), usec(30));
}

TEST(Timer, DestructionBeforeFiringIsSafe) {
  Simulator s;
  bool fired = false;
  {
    Timer t(s);
    t.schedule(usec(100), [&] { fired = true; });
  }
  s.run();
  // The shared state keeps the bookkeeping alive; the callback still runs
  // because cancel() was never called. Destroying a Timer does not cancel.
  EXPECT_TRUE(fired);
}

TEST(Timer, CancelThenScheduleWorks) {
  Simulator s;
  Timer t(s);
  int fired = 0;
  t.schedule(usec(100), [&] { fired = 1; });
  t.cancel();
  t.schedule(usec(300), [&] { fired = 2; });
  s.run();
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace sim
