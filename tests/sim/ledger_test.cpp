#include "sim/ledger.h"

#include <gtest/gtest.h>

#include "sim/time.h"

namespace sim {
namespace {

TEST(Ledger, StartsEmpty) {
  Ledger l;
  EXPECT_EQ(l.total_time(), 0);
  EXPECT_EQ(l.get(Mechanism::kContextSwitch).count, 0u);
}

TEST(Ledger, AccumulatesCharges) {
  Ledger l;
  l.add(Mechanism::kContextSwitch, usec(70));
  l.add(Mechanism::kContextSwitch, usec(70));
  l.add(Mechanism::kUnderflowTrap, usec(6), 6);
  EXPECT_EQ(l.get(Mechanism::kContextSwitch).count, 2u);
  EXPECT_EQ(l.get(Mechanism::kContextSwitch).total, usec(140));
  EXPECT_EQ(l.get(Mechanism::kUnderflowTrap).count, 6u);
  EXPECT_EQ(l.total_time(), usec(146));
}

TEST(Ledger, MergeAddsEntries) {
  Ledger a;
  Ledger b;
  a.add(Mechanism::kSignal, usec(10));
  b.add(Mechanism::kSignal, usec(5));
  b.add(Mechanism::kLockOp, usec(1), 7);
  a += b;
  EXPECT_EQ(a.get(Mechanism::kSignal).total, usec(15));
  EXPECT_EQ(a.get(Mechanism::kLockOp).count, 7u);
}

TEST(Ledger, DiffSubtracts) {
  Ledger user;
  Ledger kernel;
  user.add(Mechanism::kContextSwitch, usec(140), 2);
  kernel.add(Mechanism::kContextSwitch, usec(0), 0);
  const Ledger d = user.diff(kernel);
  EXPECT_EQ(d.get(Mechanism::kContextSwitch).count, 2u);
  EXPECT_EQ(d.get(Mechanism::kContextSwitch).total, usec(140));
}

TEST(Ledger, ResetClears) {
  Ledger l;
  l.add(Mechanism::kPayloadWire, msec(1));
  l.reset();
  EXPECT_EQ(l.total_time(), 0);
}

TEST(Ledger, EveryMechanismHasAName) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Mechanism::kCount); ++i) {
    EXPECT_NE(mechanism_name(static_cast<Mechanism>(i)), "unknown");
  }
}

}  // namespace
}  // namespace sim
