#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/require.h"
#include "sim/time.h"

namespace sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.at(usec(30), [&] { order.push_back(3); });
  s.at(usec(10), [&] { order.push_back(1); });
  s.at(usec(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), usec(30));
}

TEST(Simulator, EqualTimestampsRunInSubmissionOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    s.at(usec(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, AfterSchedulesRelativeToNow) {
  Simulator s;
  Time observed = -1;
  s.at(msec(1), [&] { s.after(usec(500), [&] { observed = s.now(); }); });
  s.run();
  EXPECT_EQ(observed, msec(1) + usec(500));
}

TEST(Simulator, PastTimestampsClampToNow) {
  Simulator s;
  Time observed = -1;
  s.at(msec(2), [&] { s.at(msec(1), [&] { observed = s.now(); }); });
  s.run();
  EXPECT_EQ(observed, msec(2));
}

TEST(Simulator, NegativeDelayClampsToZero) {
  Simulator s;
  Time observed = -1;
  s.at(msec(1), [&] { s.after(-usec(100), [&] { observed = s.now(); }); });
  s.run();
  EXPECT_EQ(observed, msec(1));
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator s;
  EXPECT_FALSE(s.step());
  s.at(0, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, RunReturnsEventCount) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.at(usec(i), [] {});
  EXPECT_EQ(s.run(), 7u);
  EXPECT_EQ(s.events_executed(), 7u);
}

TEST(Simulator, RunWithBudgetStopsEarly) {
  Simulator s;
  for (int i = 0; i < 10; ++i) s.at(usec(i), [] {});
  EXPECT_EQ(s.run(4), 4u);
  EXPECT_EQ(s.pending(), 6u);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator s;
  s.run_until(msec(5));
  EXPECT_EQ(s.now(), msec(5));
}

TEST(Simulator, RunUntilDoesNotExecuteLaterEvents) {
  Simulator s;
  bool early = false;
  bool late = false;
  s.at(msec(1), [&] { early = true; });
  s.at(msec(10), [&] { late = true; });
  s.run_until(msec(5));
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(s.now(), msec(5));
}

TEST(Simulator, RunForIsRelative) {
  Simulator s;
  s.at(msec(3), [] {});
  s.run();
  s.run_for(msec(2));
  EXPECT_EQ(s.now(), msec(5));
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) s.after(usec(1), chain);
  };
  s.after(usec(1), chain);
  s.run();
  EXPECT_EQ(depth, 5);
}

TEST(Simulator, EmptyCallableIsRejected) {
  Simulator s;
  EXPECT_THROW(s.at(0, std::function<void()>{}), SimError);
}

TEST(Simulator, TimeHelpersConvert) {
  EXPECT_EQ(usec(1), 1000);
  EXPECT_EQ(msec(1), 1000 * 1000);
  EXPECT_EQ(sec(1), 1000 * 1000 * 1000);
  EXPECT_EQ(usecf(0.5), 500);
  EXPECT_DOUBLE_EQ(to_us(usec(140)), 140.0);
  EXPECT_DOUBLE_EQ(to_ms(msecf(1.27)), 1.27);
  EXPECT_DOUBLE_EQ(to_sec(sec(790)), 790.0);
}

}  // namespace
}  // namespace sim
