#include "sim/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform(3, 3), 3);
}

TEST(Rng, Uniform01StaysInRange) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliApproximatesProbability) {
  Rng r(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ExponentialHasRoughlyTheRequestedMean) {
  Rng r(19);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  std::set<std::uint64_t> values;
  for (int i = 0; i < 50; ++i) {
    values.insert(parent.next_u64());
    values.insert(child.next_u64());
  }
  EXPECT_EQ(values.size(), 100u);
}

}  // namespace
}  // namespace sim
