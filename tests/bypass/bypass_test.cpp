// The kernel-bypass (RDMA-style) third binding, bottom to top:
//
//   * raw verbs — two-sided SEND/RECV, fragmentation, one-sided READ /
//     WRITE / ATOMIC — including hardware go-back-N recovery under frame
//     loss and PSN dedup under duplication, with the TraceChecker's bypass
//     verb-lifecycle invariant run over every faulted trace;
//   * the BypassPanda binding: an 8-byte RPC whose latency is pinned
//     item-by-item against the cost model (the bypass analogue of
//     calibration_test.cpp), and whose ledger proves the defining property —
//     zero kernel crossings, zero interrupt-to-thread dispatches;
//   * sequencer-ordered group communication over the bypass transport;
//   * the Orca RTS riding the one-sided READ fast path for remote reads.
#include "bypass/verbs.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "amoeba/world.h"
#include "bypass/bypass_panda.h"
#include "core/testbed.h"
#include "net/network.h"
#include "orca/rts.h"
#include "panda/panda.h"
#include "sim/co.h"
#include "trace/checker.h"
#include "trace/tracer.h"

namespace bypass {
namespace {

using amoeba::World;
using panda::Binding;
using sim::Mechanism;

net::Payload pattern_payload(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> bytes(n);
  for (std::size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<std::uint8_t>(seed + i * 7);
  }
  return net::Payload(std::move(bytes));
}

bool payload_equals(const net::Payload& p, std::size_t n, std::uint8_t seed = 1) {
  if (p.size() != n) return false;
  for (std::size_t i = 0; i < n; ++i) {
    if (p.byte_at(i) != static_cast<std::uint8_t>(seed + i * 7)) return false;
  }
  return true;
}

/// Two nodes, a tracer attached before any traffic, one device per node.
struct VerbsWorld {
  VerbsWorld() : tracer(world.sim()) {
    world.add_nodes(2);
    a = std::make_unique<BypassDevice>(world.kernel(0));
    b = std::make_unique<BypassDevice>(world.kernel(1));
  }

  [[nodiscard]] std::vector<std::string> check_trace() {
    const sim::Ledger ledger = world.aggregate_ledger();
    return trace::TraceChecker(tracer.events()).check_all(&ledger);
  }

  World world;
  trace::Tracer tracer;
  std::unique_ptr<BypassDevice> a;
  std::unique_ptr<BypassDevice> b;
};

// --- Two-sided SEND/RECV -----------------------------------------------------

TEST(BypassVerbs, SendRecvDeliversBytesAndSignalsTheSender) {
  VerbsWorld w;
  Completion recv;
  Completion send_cqe;
  bool received = false;
  bool send_done = false;
  std::uint64_t wr = 0;
  sim::spawn([](BypassDevice& dev, std::uint64_t& out) -> sim::Co<void> {
    out = co_await dev.post_send(1, pattern_payload(300), /*signaled=*/true);
  }(*w.a, wr));
  sim::spawn([](BypassDevice& dev, Completion& out, bool& done) -> sim::Co<void> {
    out = co_await dev.poll();
    done = true;
  }(*w.b, recv, received));
  sim::spawn([](BypassDevice& dev, Completion& out, bool& done) -> sim::Co<void> {
    out = co_await dev.poll();
    done = true;
  }(*w.a, send_cqe, send_done));
  w.world.run();

  ASSERT_TRUE(received);
  EXPECT_TRUE(payload_equals(recv.payload, 300));
  EXPECT_EQ(recv.peer, 0u);
  EXPECT_EQ(recv.bytes, 300u);
  EXPECT_EQ(recv.wr, wr);
  // The signaled send completed only once the QP acked the last fragment.
  ASSERT_TRUE(send_done);
  EXPECT_EQ(send_cqe.wr, wr);
  EXPECT_EQ(send_cqe.op, Opcode::kSend);
  EXPECT_TRUE(w.check_trace().empty());
}

TEST(BypassVerbs, LargeMessageFragmentsAndReassembles) {
  VerbsWorld w;
  // Default 1500-byte MTU minus the 48-byte transport header = 1452 bytes
  // per fragment; 5000 bytes therefore crosses the wire as 4 frames.
  constexpr std::size_t kBytes = 5000;
  Completion recv;
  bool received = false;
  sim::spawn([](BypassDevice& dev) -> sim::Co<void> {
    (void)co_await dev.post_send(1, pattern_payload(kBytes));
  }(*w.a));
  sim::spawn([](BypassDevice& dev, Completion& out, bool& done) -> sim::Co<void> {
    out = co_await dev.poll();
    done = true;
  }(*w.b, recv, received));
  w.world.run();

  ASSERT_TRUE(received);
  EXPECT_TRUE(payload_equals(recv.payload, kBytes));
  EXPECT_EQ(w.a->frames_sent(), 4u);
  EXPECT_TRUE(w.check_trace().empty());
}

// --- One-sided verbs ---------------------------------------------------------

TEST(BypassVerbs, OneSidedWriteLandsInRegionWithoutTargetCpu) {
  VerbsWorld w;
  const RegionHandle mr = w.b->register_region(1024);
  Completion done_cqe;
  bool done = false;
  sim::spawn([](BypassDevice& dev, std::uint64_t rkey, Completion& out,
                bool& flag) -> sim::Co<void> {
    out = co_await dev.write(1, rkey, 64, pattern_payload(100));
    flag = true;
  }(*w.a, mr.rkey, done_cqe, done));
  w.world.run();

  ASSERT_TRUE(done);
  EXPECT_TRUE(done_cqe.ok);
  const std::uint8_t* data = w.b->region_data(mr.rkey);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(data[64 + i], static_cast<std::uint8_t>(1 + i * 7)) << i;
  }
  // The target paid only NIC time: remote access service, never a thread.
  const sim::Ledger& target = w.world.kernel(1).ledger();
  EXPECT_EQ(target.get(Mechanism::kRemoteAccess).count, 1u);
  EXPECT_EQ(target.get(Mechanism::kContextSwitch).count, 0u);
  EXPECT_EQ(target.get(Mechanism::kThreadSwitch).count, 0u);
  EXPECT_EQ(target.get(Mechanism::kSyscallCrossing).count, 0u);
  EXPECT_TRUE(w.check_trace().empty());
}

TEST(BypassVerbs, OneSidedReadReturnsRegionBytes) {
  VerbsWorld w;
  const RegionHandle mr = w.b->register_region(256);
  std::uint8_t* data = w.b->region_data(mr.rkey);
  for (std::size_t i = 0; i < 256; ++i) {
    data[i] = static_cast<std::uint8_t>(200 - i);
  }
  Completion got;
  bool done = false;
  sim::spawn([](BypassDevice& dev, std::uint64_t rkey, Completion& out,
                bool& flag) -> sim::Co<void> {
    out = co_await dev.read(1, rkey, 100, 32);
    flag = true;
  }(*w.a, mr.rkey, got, done));
  w.world.run();

  ASSERT_TRUE(done);
  EXPECT_EQ(got.op, Opcode::kReadReq);
  ASSERT_EQ(got.payload.size(), 32u);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(got.payload.byte_at(i), static_cast<std::uint8_t>(200 - (100 + i)));
  }
  EXPECT_TRUE(w.check_trace().empty());
}

TEST(BypassVerbs, ReadHookOverridesRawByteService) {
  VerbsWorld w;
  const RegionHandle mr = w.b->register_region(64);
  w.b->set_read_hook(mr.rkey, [](std::uint64_t addr, std::uint32_t len,
                                 const net::Payload& args) {
    net::Writer reply;
    reply.u64(addr).u32(len).payload(args);
    return reply.take();
  });
  Completion got;
  bool done = false;
  sim::spawn([](BypassDevice& dev, std::uint64_t rkey, Completion& out,
                bool& flag) -> sim::Co<void> {
    net::Writer args;
    args.u32(7);
    out = co_await dev.read(1, rkey, 0xABCD, 16, args.take());
    flag = true;
  }(*w.a, mr.rkey, got, done));
  w.world.run();

  ASSERT_TRUE(done);
  net::Reader r(got.payload);
  EXPECT_EQ(r.u64(), 0xABCDu);
  EXPECT_EQ(r.u32(), 16u);
  EXPECT_EQ(r.u32(), 7u);
}

TEST(BypassVerbs, FetchAddReturnsOldValueAndApplies) {
  VerbsWorld w;
  const RegionHandle mr = w.b->register_region(64);
  std::uint64_t first = 0;
  std::uint64_t second = 0;
  bool done = false;
  sim::spawn([](BypassDevice& dev, std::uint64_t rkey, std::uint64_t& o1,
                std::uint64_t& o2, bool& flag) -> sim::Co<void> {
    Completion c1 = co_await dev.fetch_add(1, rkey, 8, 5);
    o1 = net::Reader(c1.payload).u64();
    Completion c2 = co_await dev.fetch_add(1, rkey, 8, 37);
    o2 = net::Reader(c2.payload).u64();
    flag = true;
  }(*w.a, mr.rkey, first, second, done));
  w.world.run();

  ASSERT_TRUE(done);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(second, 5u);
  // Big-endian 42 at offset 8.
  const std::uint8_t* data = w.b->region_data(mr.rkey);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value = (value << 8) | data[8 + i];
  EXPECT_EQ(value, 42u);
  EXPECT_TRUE(w.check_trace().empty());
}

// --- Hardware reliability under faults ---------------------------------------

TEST(BypassVerbs, LostFrameRecoversByGoBackNExactlyOnce) {
  VerbsWorld w;
  // Drop the first two-sided data frame once; go-back-N must replay it.
  int drops = 0;
  w.world.network().segment(0).set_loss_hook([&drops](const net::Frame& f) {
    if (drops == 0 && f.payload.size() >= 2 && f.payload.byte_at(0) == kMagic &&
        f.payload.byte_at(1) == static_cast<std::uint8_t>(Opcode::kSend)) {
      ++drops;
      return true;
    }
    return false;
  });
  std::vector<Completion> got;
  sim::spawn([](BypassDevice& dev) -> sim::Co<void> {
    (void)co_await dev.post_send(1, pattern_payload(40, 1));
    (void)co_await dev.post_send(1, pattern_payload(50, 2));
    (void)co_await dev.post_send(1, pattern_payload(60, 3));
  }(*w.a));
  sim::spawn([](BypassDevice& dev, std::vector<Completion>& out) -> sim::Co<void> {
    for (int i = 0; i < 3; ++i) out.push_back(co_await dev.poll());
  }(*w.b, got));
  w.world.run();

  EXPECT_EQ(drops, 1);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_TRUE(payload_equals(got[0].payload, 40, 1));
  EXPECT_TRUE(payload_equals(got[1].payload, 50, 2));
  EXPECT_TRUE(payload_equals(got[2].payload, 60, 3));
  EXPECT_GE(w.a->retransmit_rounds(), 1u);
  // Frames 2 and 3 raced ahead of the retransmission and were PSN-stale.
  EXPECT_GE(w.b->stale_frames(), 1u);
  EXPECT_TRUE(w.check_trace().empty()) << w.check_trace().front();
}

TEST(BypassVerbs, DuplicatedFramesAreDiscardedByPsn) {
  VerbsWorld w;
  // Deliver every bypass data frame twice; PSN sequencing must dedup, and
  // the checker proves each one-sided op was served exactly once.
  w.world.network().segment(0).set_dup_hook([](const net::Frame& f) {
    return f.payload.size() >= 2 && f.payload.byte_at(0) == kMagic &&
           f.payload.byte_at(1) != static_cast<std::uint8_t>(Opcode::kAck);
  });
  const RegionHandle mr = w.b->register_region(64);
  std::uint64_t old1 = 0;
  std::uint64_t old2 = 0;
  bool done = false;
  sim::spawn([](BypassDevice& dev, std::uint64_t rkey, std::uint64_t& o1,
                std::uint64_t& o2, bool& flag) -> sim::Co<void> {
    Completion c1 = co_await dev.fetch_add(1, rkey, 0, 3);
    o1 = net::Reader(c1.payload).u64();
    Completion c2 = co_await dev.fetch_add(1, rkey, 0, 4);
    o2 = net::Reader(c2.payload).u64();
    (void)co_await dev.write(1, rkey, 16, pattern_payload(8));
    Completion r = co_await dev.read(1, rkey, 16, 8);
    EXPECT_TRUE(payload_equals(r.payload, 8));
    flag = true;
  }(*w.a, mr.rkey, old1, old2, done));
  w.world.run();

  ASSERT_TRUE(done);
  // Duplicates applied twice would make the second old-value read 10, not 3.
  EXPECT_EQ(old1, 0u);
  EXPECT_EQ(old2, 3u);
  EXPECT_GE(w.b->stale_frames(), 1u);
  EXPECT_TRUE(w.check_trace().empty()) << w.check_trace().front();
}

TEST(BypassVerbs, OneSidedCompletionsStayInPostOrderUnderLoss) {
  VerbsWorld w;
  // Periodic deterministic loss across a longer one-sided conversation; the
  // checker's bypass invariant proves per-peer completion order follows post
  // (wr) order even across go-back-N rounds.
  int seen = 0;
  w.world.network().segment(0).set_loss_hook([&seen](const net::Frame& f) {
    if (f.payload.size() < 2 || f.payload.byte_at(0) != kMagic ||
        f.payload.byte_at(1) == static_cast<std::uint8_t>(Opcode::kAck)) {
      return false;
    }
    return ++seen % 5 == 0;
  });
  const RegionHandle mr = w.b->register_region(256);
  int completed = 0;
  sim::spawn([](BypassDevice& dev, std::uint64_t rkey, int& done) -> sim::Co<void> {
    for (int i = 0; i < 6; ++i) {
      net::Writer v;
      v.u32(static_cast<std::uint32_t>(i));
      (void)co_await dev.write(1, rkey, static_cast<std::uint64_t>(4 * i),
                               v.take());
      ++done;
    }
    Completion c = co_await dev.read(1, rkey, 0, 24);
    net::Reader r(c.payload);
    for (std::uint32_t i = 0; i < 6; ++i) EXPECT_EQ(r.u32(), i);
    ++done;
  }(*w.a, mr.rkey, completed));
  w.world.run();

  EXPECT_EQ(completed, 7);
  EXPECT_GE(w.a->retransmit_rounds() + w.b->retransmit_rounds(), 1u);
  EXPECT_TRUE(w.check_trace().empty()) << w.check_trace().front();
}

// --- The BypassPanda binding: latency budget and kernel-crossing audit -------

TEST(BypassPanda, EightByteRpcLatencyMatchesTheCostModelItemByItem) {
  // The bypass analogue of calibration_test.cpp: the measured 8-byte RPC
  // latency must equal the sum of the modelled budget items exactly (the
  // substrate is deterministic; there is nothing to average away).
  const amoeba::CostModel c = amoeba::CostModel::modern();
  // Preset::kAuto with Binding::kBypass selects the modern wire (Testbed).
  net::WireParams wire;
  wire.ns_per_byte = 1;
  wire.propagation = sim::nsec(400);
  wire.mtu = 4096;
  const auto dma = [&c](std::size_t bytes) {
    return static_cast<sim::Time>(bytes / c.bypass_dma_bytes_per_ns);
  };
  // BypassPanda framing: request = tag(1) + tid(4) + client(4) + body;
  // reply = tag + tid + client with an empty body (Table 1 methodology).
  const std::size_t req = 1 + 4 + 4 + 8;
  const std::size_t rep = 1 + 4 + 4;
  // One direction: doorbell ring, NIC WQE fetch + DMA out, the wire, NIC
  // validate + DMA in, and the receiver's CQ poll. No syscall, no interrupt
  // dispatch, no thread switch anywhere in the budget.
  const auto one_way = [&](std::size_t msg) {
    return c.bypass_doorbell                                    // MMIO post
           + c.bypass_wqe + dma(msg + c.bypass_header)          // NIC tx
           + net::wire_time(wire, msg + c.bypass_header)        // medium
           + wire.propagation                                   // signal
           + c.bypass_wqe + dma(msg + c.bypass_header)          // NIC rx
           + c.bypass_cq_poll;                                  // CQE reap
  };
  const sim::Time expected = c.bypass_protocol_processing  // client marshal
                             + one_way(req)
                             + c.bypass_protocol_processing  // server demux
                             + c.bypass_protocol_processing  // reply marshal
                             + one_way(rep);
  EXPECT_EQ(expected, sim::nsec(2712));
  EXPECT_EQ(core::measure_rpc_latency(Binding::kBypass, 8), expected);
}

TEST(BypassPanda, RpcChargesNoKernelCrossingOrInterruptDispatch) {
  const core::TracedRun run = core::traced_rpc_run(Binding::kBypass, 8);
  // The defining property of the binding: the 1995 mechanisms that the paper
  // shows dominating both kernel- and user-space stacks never fire at all.
  for (const Mechanism never : {
           Mechanism::kSyscallCrossing, Mechanism::kContextSwitch,
           Mechanism::kThreadSwitch, Mechanism::kInterruptDispatch,
           Mechanism::kUserKernelCopy, Mechanism::kAddressTranslation,
           Mechanism::kWindowSave, Mechanism::kUnderflowTrap,
           Mechanism::kOverflowTrap, Mechanism::kSignal,
           Mechanism::kFragmentationLayer, Mechanism::kLockOp}) {
    EXPECT_EQ(run.ledger.get(never).count, 0u)
        << sim::mechanism_name(never);
    EXPECT_EQ(run.ledger.get(never).total, 0) << sim::mechanism_name(never);
  }
  // 11 calls (one warm-up + 10 measured), each: 2 doorbells (request +
  // reply), 2 CQ polls, 3 protocol-processing charges.
  EXPECT_EQ(run.ledger.get(Mechanism::kDoorbell).count, 22u);
  EXPECT_EQ(run.ledger.get(Mechanism::kCqPoll).count, 22u);
  EXPECT_EQ(run.ledger.get(Mechanism::kProtocolProcessing).count, 33u);
  EXPECT_GT(run.ledger.get(Mechanism::kWqeProcessing).count, 0u);
}

TEST(BypassPanda, TracedRpcRunPassesEveryInvariantIncludingConservation) {
  const core::TracedRun run = core::traced_rpc_run(Binding::kBypass, 8);
  const std::vector<std::string> violations =
      trace::TraceChecker(run.events).check_all(&run.ledger);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: " << violations.front();
}

// --- Group communication over bypass -----------------------------------------

TEST(BypassPanda, GroupDeliveryIsTotallyOrderedAndGapless) {
  core::TestbedConfig cfg;
  cfg.binding = Binding::kBypass;
  cfg.nodes = 3;
  cfg.sequencer = 1;
  cfg.trace = true;
  core::Testbed bed(cfg);
  std::vector<std::vector<std::pair<std::uint32_t, net::NodeId>>> seen(3);
  for (net::NodeId n = 0; n < 3; ++n) {
    bed.panda(n).set_group_handler(
        [&seen, n](amoeba::Thread&, net::NodeId sender, std::uint32_t seqno,
                   net::Payload) -> sim::Co<void> {
          seen[n].emplace_back(seqno, sender);
          co_return;
        });
  }
  bed.start();
  for (net::NodeId n = 0; n < 3; ++n) {
    amoeba::Thread& t = bed.world().kernel(n).create_thread("sender");
    sim::spawn([](panda::Panda& p, amoeba::Thread& self) -> sim::Co<void> {
      for (int i = 0; i < 4; ++i) {
        co_await p.group_send(self, net::Payload::zeros(100));
      }
    }(bed.panda(n), t));
  }
  bed.sim().run();

  ASSERT_EQ(seen[0].size(), 12u);
  for (std::size_t i = 0; i < seen[0].size(); ++i) {
    EXPECT_EQ(seen[0][i].first, i + 1);  // gapless from seqno 1
    EXPECT_EQ(seen[1][i], seen[0][i]);   // every member, identical order
    EXPECT_EQ(seen[2][i], seen[0][i]);
  }
  const sim::Ledger ledger = bed.world().aggregate_ledger();
  const std::vector<std::string> violations =
      trace::TraceChecker(bed.trace_events()).check_all(&ledger);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: " << violations.front();
}

// --- Orca over bypass: the one-sided READ fast path --------------------------

struct PairState final : orca::ObjectState {
  std::int64_t value = 0;
};

struct PairType {
  orca::TypeId type = 0;
  orca::OpId read = 0;
  orca::OpId add = 0;

  static PairType register_in(orca::TypeRegistry& reg) {
    PairType ids;
    orca::ObjectType t("pair", [](const net::Payload& init) {
      auto s = std::make_unique<PairState>();
      if (init.size() >= 8) s->value = net::Reader(init).i64();
      return s;
    });
    ids.read = t.add_operation(orca::OpDef{
        .name = "read",
        .is_write = false,
        .guard = nullptr,
        .apply =
            [](orca::ObjectState& s, const net::Payload&) {
              net::Writer w;
              w.i64(static_cast<PairState&>(s).value);
              return w.take();
            },
        .cost = sim::usec(1)});
    ids.add = t.add_operation(orca::OpDef{
        .name = "add",
        .is_write = true,
        .guard = nullptr,
        .apply =
            [](orca::ObjectState& s, const net::Payload& args) {
              auto& state = static_cast<PairState&>(s);
              state.value += net::Reader(args).i64();
              net::Writer w;
              w.i64(state.value);
              return w.take();
            },
        .cost = sim::usec(2)});
    ids.type = reg.register_type(std::move(t));
    return ids;
  }
};

TEST(BypassOrca, RemoteUnguardedReadsUseOneSidedReads) {
  amoeba::World world;
  world.add_nodes(2);
  orca::TypeRegistry registry;
  const PairType pair = PairType::register_in(registry);
  panda::ClusterConfig cfg;
  cfg.binding = Binding::kBypass;
  cfg.nodes = {0, 1};
  std::vector<std::unique_ptr<panda::Panda>> pandas;
  std::vector<std::unique_ptr<orca::Rts>> rtses;
  for (net::NodeId i = 0; i < 2; ++i) {
    pandas.push_back(panda::make_panda(world.kernel(i), cfg));
    rtses.push_back(std::make_unique<orca::Rts>(*pandas.back(), registry));
    rtses.back()->attach();
  }
  for (auto& p : pandas) p->start();

  orca::ObjHandle handle;
  bool created = false;
  rtses[0]->fork("owner", [&](orca::Process& p) -> sim::Co<void> {
    net::Writer init;
    init.i64(100);
    handle = co_await p.rts().create_object(
        p.thread(), pair.type, init.take(),
        orca::ObjectHints{.expected_read_fraction = 0.1});
    created = true;
  });
  std::int64_t after_add = 0;
  std::int64_t read_back = 0;
  rtses[1]->fork("reader", [&](orca::Process& p) -> sim::Co<void> {
    while (!created) co_await sim::delay(world.sim(), sim::usec(10));
    // A write still travels by RPC to the owner...
    net::Writer delta;
    delta.i64(-58);
    after_add = net::Reader(co_await p.invoke(handle, pair.add, delta.take())).i64();
    // ...but an unguarded read fetches the state with a one-sided READ.
    read_back = net::Reader(co_await p.invoke(handle, pair.read)).i64();
  });
  world.sim().run();

  EXPECT_EQ(after_add, 42);
  EXPECT_EQ(read_back, 42);
  EXPECT_EQ(rtses[1]->one_sided_reads(), 1u);
  EXPECT_GE(rtses[1]->remote_invocations(), 1u);
  // The owner's CPU never served the read: only its NIC did.
  EXPECT_GE(world.kernel(0).ledger().get(Mechanism::kRemoteAccess).count, 1u);
}

}  // namespace
}  // namespace bypass
