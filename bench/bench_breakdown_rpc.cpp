// Reproduces the §4.2 analysis: where does the ~0.3 ms user-vs-kernel gap in
// null-RPC latency come from?
//
// Paper accounting (per RPC):
//   two context switches .......... ~140 us   (essential to user space)
//   register-window traps and
//   address-space crossings ....... ~50 us    (kernel-threads artefact)
//   double fragmentation .......... ~40 us
//   larger headers ................ ~16 us
//   untuned user FLIP interface ... ~54 us
//
// We run null RPCs on both bindings and print the per-mechanism ledger
// difference, normalised per RPC.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/testbed.h"
#include "trace/chrome_export.h"

namespace {

using amoeba::Thread;
using core::Binding;

sim::Ledger run_null_rpcs(Binding binding, int count, sim::Time* latency) {
  core::TestbedConfig cfg;
  cfg.binding = binding;
  cfg.nodes = 2;
  core::Testbed bed(cfg);
  bed.panda(1).set_rpc_handler(
      [&bed](Thread& upcall, panda::RpcTicket t, net::Payload) -> sim::Co<void> {
        co_await bed.panda(1).rpc_reply(upcall, t, net::Payload());
      });
  bed.start();
  sim::Ledger before;
  sim::Time elapsed = 0;
  Thread& client = bed.world().kernel(0).create_thread("client");
  sim::spawn([](core::Testbed& b, Thread& self, int n, sim::Ledger& snap,
                sim::Time& total) -> sim::Co<void> {
    (void)co_await b.panda(0).rpc(self, 1, net::Payload());  // warm-up
    snap = b.world().aggregate_ledger();
    const sim::Time t0 = b.sim().now();
    for (int i = 0; i < n; ++i) {
      (void)co_await b.panda(0).rpc(self, 1, net::Payload());
    }
    total = b.sim().now() - t0;
  }(bed, client, count, before, elapsed));
  bed.sim().run();
  if (latency != nullptr) *latency = elapsed / count;
  return bed.world().aggregate_ledger().diff(before);
}

/// --trace=FILE: run a traced 4-node RPC workload (each node calls its
/// neighbour) and dump a Chrome trace-event JSON, loadable in
/// chrome://tracing or https://ui.perfetto.dev.
int run_traced(const std::string& path) {
  core::TestbedConfig cfg;
  cfg.binding = Binding::kUserSpace;
  cfg.nodes = 4;
  cfg.trace = true;
  core::Testbed bed(cfg);
  for (core::NodeId n = 0; n < 4; ++n) {
    bed.panda(n).set_rpc_handler(
        [&bed, n](Thread& upcall, panda::RpcTicket t,
                  net::Payload req) -> sim::Co<void> {
          co_await bed.panda(n).rpc_reply(upcall, t, std::move(req));
        });
  }
  bed.start();
  for (core::NodeId n = 0; n < 4; ++n) {
    Thread& client = bed.world().kernel(n).create_thread("client");
    sim::spawn([](core::Testbed& b, Thread& self, core::NodeId src)
                   -> sim::Co<void> {
      const core::NodeId dst = (src + 1) % 4;
      for (int i = 0; i < 4; ++i) {
        (void)co_await b.panda(src).rpc(self, dst,
                                        net::Payload::zeros(256 * (i + 1)));
      }
    }(bed, client, n));
  }
  bed.sim().run();
  if (!trace::write_chrome_trace_file(bed.tracer()->events(), path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %zu trace events to %s (chrome://tracing)\n",
              bed.tracer()->events().size(), path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      return run_traced(argv[i] + 8);
    }
  }
  constexpr int kRounds = 50;
  sim::Time user_lat = 0;
  sim::Time kernel_lat = 0;
  const sim::Ledger user = run_null_rpcs(Binding::kUserSpace, kRounds, &user_lat);
  const sim::Ledger kernel =
      run_null_rpcs(Binding::kKernelSpace, kRounds, &kernel_lat);

  std::printf("==============================================================\n");
  std::printf("§4.2 breakdown — user-space vs kernel-space null RPC\n");
  std::printf("==============================================================\n\n");
  std::printf("latency: user %.2f ms, kernel %.2f ms, gap %.0f us "
              "(paper: 1.56 vs 1.27, gap ~300 us)\n\n",
              sim::to_ms(user_lat), sim::to_ms(kernel_lat),
              sim::to_us(user_lat - kernel_lat));

  std::printf("%-22s | %-18s | %-18s | %s\n", "mechanism (per RPC)",
              "user count/us", "kernel count/us", "delta us");
  double total_delta = 0.0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(sim::Mechanism::kCount);
       ++i) {
    const auto m = static_cast<sim::Mechanism>(i);
    const auto& u = user.get(m);
    const auto& k = kernel.get(m);
    if (u.count == 0 && k.count == 0) continue;
    const double du = sim::to_us(u.total) / kRounds;
    const double dk = sim::to_us(k.total) / kRounds;
    total_delta += du - dk;
    std::printf("%-22s | %5.1f x %7.1f | %5.1f x %7.1f | %+8.1f\n",
                std::string(sim::mechanism_name(m)).c_str(),
                static_cast<double>(u.count) / kRounds, du,
                static_cast<double>(k.count) / kRounds, dk, du - dk);
  }
  std::printf("%-22s | %18s | %18s | %+8.1f\n", "total CPU-time delta", "", "",
              total_delta);
  std::printf("\nPaper's essential components: 140 us context switches, ~50 us\n"
              "traps+crossings, 40 us fragmentation, 16 us headers, ~54 us\n"
              "untuned FLIP user interface. Wire-time differences (headers)\n"
              "show up in latency, not in the CPU ledger.\n");
  return 0;
}
