// Reproduces the §4.2 analysis: where does the ~0.3 ms user-vs-kernel gap in
// null-RPC latency come from?
//
// Paper accounting (per RPC):
//   two context switches .......... ~140 us   (essential to user space)
//   register-window traps and
//   address-space crossings ....... ~50 us    (kernel-threads artefact)
//   double fragmentation .......... ~40 us
//   larger headers ................ ~16 us
//   untuned user FLIP interface ... ~54 us
//
// We run null RPCs on both bindings and print the per-mechanism ledger
// difference, normalised per RPC. With --json=FILE the report additionally
// carries the protocol counters and the RPC latency histograms of both runs.
#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "core/testbed.h"

namespace {

using amoeba::Thread;
using core::Binding;

struct RpcRun {
  sim::Time latency = 0;
  sim::Ledger ledger;
  metrics::MetricsRegistry registry;  // aggregated across nodes
  core::SeriesCapture series;         // windowed telemetry over the run
};

RpcRun run_null_rpcs(Binding binding, int count) {
  core::TestbedConfig cfg;
  cfg.binding = binding;
  cfg.nodes = 2;
  cfg.metrics = true;
  cfg.series_window = sim::usec(500);
  core::Testbed bed(cfg);
  bed.panda(1).set_rpc_handler(
      [&bed](Thread& upcall, panda::RpcTicket t, net::Payload) -> sim::Co<void> {
        co_await bed.panda(1).rpc_reply(upcall, t, net::Payload());
      });
  bed.start();
  sim::Ledger before;
  sim::Time elapsed = 0;
  Thread& client = bed.world().kernel(0).create_thread("client");
  sim::spawn([](core::Testbed& b, Thread& self, int n, sim::Ledger& snap,
                sim::Time& total) -> sim::Co<void> {
    (void)co_await b.panda(0).rpc(self, 1, net::Payload());  // warm-up
    snap = b.world().aggregate_ledger();
    const sim::Time t0 = b.sim().now();
    for (int i = 0; i < n; ++i) {
      (void)co_await b.panda(0).rpc(self, 1, net::Payload());
    }
    total = b.sim().now() - t0;
  }(bed, client, count, before, elapsed));
  bed.sim().run();
  bed.world().snapshot_net_metrics();
  RpcRun run;
  run.latency = elapsed / count;
  run.ledger = bed.world().aggregate_ledger().diff(before);
  run.registry = bed.metrics()->aggregate();
  bed.series()->finish(bed.sim().now());
  run.series.window = bed.series()->window();
  run.series.columns = bed.series()->columns();
  return run;
}

/// Serialize a run's windowed telemetry into the report's `series` section.
void add_series(metrics::RunReport& report, const std::string& name,
                const core::SeriesCapture& s) {
  std::vector<std::pair<std::string, std::vector<double>>> columns;
  for (const auto& c : s.columns) columns.emplace_back(c.name, c.values);
  report.add_series(name, s.window, std::move(columns));
}

/// --trace=FILE: run a traced 4-node RPC workload (each node calls its
/// neighbour) and dump a Chrome trace-event JSON, loadable in
/// chrome://tracing or https://ui.perfetto.dev.
int run_traced(const std::string& path) {
  core::TestbedConfig cfg;
  cfg.binding = Binding::kUserSpace;
  cfg.nodes = 4;
  cfg.trace = true;
  core::Testbed bed(cfg);
  for (core::NodeId n = 0; n < 4; ++n) {
    bed.panda(n).set_rpc_handler(
        [&bed, n](Thread& upcall, panda::RpcTicket t,
                  net::Payload req) -> sim::Co<void> {
          co_await bed.panda(n).rpc_reply(upcall, t, std::move(req));
        });
  }
  bed.start();
  for (core::NodeId n = 0; n < 4; ++n) {
    Thread& client = bed.world().kernel(n).create_thread("client");
    sim::spawn([](core::Testbed& b, Thread& self, core::NodeId src)
                   -> sim::Co<void> {
      const core::NodeId dst = (src + 1) % 4;
      for (int i = 0; i < 4; ++i) {
        (void)co_await b.panda(src).rpc(self, dst,
                                        net::Payload::zeros(256 * (i + 1)));
      }
    }(bed, client, n));
  }
  bed.sim().run();
  return bench::write_trace(bed.tracer()->events(), path) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args;
  if (!bench::parse_args(argc, argv, bench::kTrace, args)) return 2;
  if (!args.trace_path.empty()) return run_traced(args.trace_path);
  // --profile=FILE: the §4.2 accounting computed automatically — causal
  // profile of the user-space 8-byte RPC run.
  if (!args.profile_path.empty()) {
    const core::TracedRun run =
        core::traced_rpc_run(Binding::kUserSpace, 8, 50);
    return bench::write_profile(run.events, "breakdown_rpc:rpc_user_8B",
                                args.profile_path)
               ? 0
               : 1;
  }

  constexpr int kRounds = 50;
  const RpcRun user = run_null_rpcs(Binding::kUserSpace, kRounds);
  const RpcRun kernel = run_null_rpcs(Binding::kKernelSpace, kRounds);

  bench::print_banner("§4.2 breakdown — user-space vs kernel-space null RPC");
  std::printf("\nlatency: user %.2f ms, kernel %.2f ms, gap %.0f us "
              "(paper: 1.56 vs 1.27, gap ~300 us)\n\n",
              sim::to_ms(user.latency), sim::to_ms(kernel.latency),
              sim::to_us(user.latency - kernel.latency));

  metrics::RunReport report("breakdown_rpc");
  report.set_config("rounds", std::int64_t{kRounds});
  report.set_config("nodes", std::int64_t{2});
  report.set_config("seed", std::uint64_t{42});
  report.add_metric("rpc_user.latency_ms", sim::to_ms(user.latency),
                    metrics::Better::kLower, "ms");
  report.add_metric("rpc_kernel.latency_ms", sim::to_ms(kernel.latency),
                    metrics::Better::kLower, "ms");
  bench::print_ledger_delta("mechanism (per RPC)", user.ledger, kernel.ledger,
                            kRounds, &report);
  report.add_registry(user.registry, "user.");
  report.add_registry(kernel.registry, "kernel.");
  add_series(report, "user", user.series);
  add_series(report, "kernel", kernel.series);

  std::printf("\nPaper's essential components: 140 us context switches, ~50 us\n"
              "traps+crossings, 40 us fragmentation, 16 us headers, ~54 us\n"
              "untuned FLIP user interface. Wire-time differences (headers)\n"
              "show up in latency, not in the CPU ledger.\n");

  // The same accounting, as share-of-total tables.
  std::printf("\n");
  user.ledger.print_breakdown(stdout, "user-space ledger (per RPC)", kRounds);
  std::printf("\n");
  kernel.ledger.print_breakdown(stdout, "kernel-space ledger (per RPC)",
                                kRounds);

  if (!args.json_path.empty() && !bench::write_report(report, args.json_path)) {
    return 1;
  }
  return 0;
}
