// Ablations over the design choices DESIGN.md calls out:
//
//   1. BB threshold — when should the group protocol switch from
//      sequencer-forwarding (PB) to sender-broadcast (BB)?
//   2. Sequencer history capacity — how often do overflow status rounds
//      fire, and what do they cost?
//   3. RPC daemon pool size (kernel binding) — blocked guarded operations
//      park daemons; too few means stalls until the pool grows.
//   4. Dedicated vs shared sequencer for the group-bound LEQ workload.
#include <cstdio>
#include <string>

#include "amoeba/group.h"
#include "amoeba/world.h"
#include "apps/leq.h"
#include "bench/harness.h"
#include "core/testbed.h"

namespace {

using amoeba::Thread;
using core::Binding;

sim::Time group_latency_with(std::size_t bb_threshold, std::size_t bytes) {
  amoeba::World world;
  world.add_nodes(2);
  panda::ClusterConfig cc;
  cc.binding = Binding::kUserSpace;
  cc.nodes = {0, 1};
  cc.sequencer = 1;
  cc.bb_threshold = bb_threshold;
  std::vector<std::unique_ptr<panda::Panda>> pandas;
  for (amoeba::NodeId i = 0; i < 2; ++i) {
    pandas.push_back(panda::make_panda(world.kernel(i), cc));
    pandas.back()->set_group_handler(
        [](Thread&, amoeba::NodeId, std::uint32_t, net::Payload) -> sim::Co<void> {
          co_return;
        });
    pandas.back()->start();
  }
  sim::Time elapsed = 0;
  Thread& sender = world.kernel(0).create_thread("sender");
  sim::spawn([](panda::Panda& p, Thread& self, sim::Simulator& s, std::size_t sz,
                sim::Time& out) -> sim::Co<void> {
    co_await p.group_send(self, net::Payload::zeros(sz));
    const sim::Time t0 = s.now();
    for (int i = 0; i < 10; ++i) {
      co_await p.group_send(self, net::Payload::zeros(sz));
    }
    out = (s.now() - t0) / 10;
  }(*pandas[0], sender, world.sim(), bytes, elapsed));
  world.sim().run();
  return elapsed;
}

struct HistoryResult {
  sim::Time elapsed;
  std::uint64_t status_rounds;
};

HistoryResult group_stream_with_history(std::size_t history) {
  amoeba::World world;
  world.add_nodes(3);
  std::vector<std::unique_ptr<amoeba::KernelGroup>> groups;
  amoeba::GroupConfig gc;
  gc.members = {0, 1, 2};
  gc.history_capacity = history;
  for (amoeba::NodeId i = 0; i < 3; ++i) {
    groups.push_back(std::make_unique<amoeba::KernelGroup>(world.kernel(i)));
    groups.back()->join(1, gc);
  }
  sim::Time last_delivery = 0;
  for (amoeba::NodeId i = 0; i < 3; ++i) {
    Thread& listener = world.kernel(i).create_thread("listener");
    sim::spawn([](amoeba::KernelGroup& g, Thread& self, sim::Simulator& s,
                  sim::Time& last) -> sim::Co<void> {
      for (int k = 0; k < 150; ++k) {
        (void)co_await g.receive(self, 1);
        last = std::max(last, s.now());
      }
    }(*groups[i], listener, world.sim(), last_delivery));
  }
  Thread& sender = world.kernel(1).create_thread("sender");
  sim::spawn([](amoeba::KernelGroup& g, Thread& self) -> sim::Co<void> {
    for (int k = 0; k < 150; ++k) {
      co_await g.send(self, 1, net::Payload::zeros(256));
    }
  }(*groups[1], sender));
  world.sim().run();  // drains trailing flow-control timers too
  return HistoryResult{last_delivery, groups[0]->status_rounds()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args;
  if (!bench::parse_args(argc, argv, bench::kNone, args)) return 2;

  // --profile=FILE: causal profile of the ablations' subject — the
  // user-space group send path.
  if (!args.profile_path.empty()) {
    const core::TracedRun run =
        core::traced_group_run(core::Binding::kUserSpace, 8);
    return bench::write_profile(run.events, "ablation:group_user_8B",
                                args.profile_path)
               ? 0
               : 1;
  }

  metrics::RunReport report("ablation");
  report.set_config("seed", std::uint64_t{42});

  bench::print_banner("Ablations over protocol design choices");

  std::printf("\n[1] BB threshold vs group latency (user space, 2 KB message)\n");
  std::printf("    %-18s %s\n", "threshold [B]", "latency [ms]");
  for (const std::size_t threshold : {100UL, 700UL, 1400UL, 4000UL, 16000UL}) {
    const double ms = sim::to_ms(group_latency_with(threshold, 2048));
    std::printf("    %-18zu %.2f%s\n", threshold, ms,
                threshold == 1400 ? "   <- default (one fragment)" : "");
    report.add_metric("bb_threshold." + std::to_string(threshold) + "B.ms", ms,
                      metrics::Better::kLower, "ms");
  }
  std::printf("    Small thresholds broadcast the body once (BB) — cheaper for\n"
              "    large messages; huge thresholds push everything through the\n"
              "    sequencer twice (PB).\n");

  std::printf("\n[2] Sequencer history capacity vs overflow status rounds\n");
  std::printf("    %-18s %-14s %s\n", "capacity [msgs]", "time [ms]",
              "status rounds");
  for (const std::size_t capacity : {8UL, 32UL, 128UL, 512UL}) {
    const HistoryResult r = group_stream_with_history(capacity);
    std::printf("    %-18zu %-14.1f %llu\n", capacity, sim::to_ms(r.elapsed),
                static_cast<unsigned long long>(r.status_rounds));
    const std::string prefix = "history." + std::to_string(capacity);
    report.add_metric(prefix + ".ms", sim::to_ms(r.elapsed),
                      metrics::Better::kLower, "ms");
    report.add_metric(prefix + ".status_rounds",
                      static_cast<double>(r.status_rounds),
                      metrics::Better::kInfo);
  }
  std::printf("    Tiny histories force frequent flow-control rounds; the\n"
              "    protocol stays correct (\"mechanisms to prevent overflow of\n"
              "    the history buffer\") but pays latency for them.\n");

  std::printf("\n[3] Dedicated vs shared sequencer, LEQ at 16 and 32 processors\n");
  for (const std::size_t p : {16UL, 32UL}) {
    apps::LeqParams shared;
    shared.run.binding = panda::Binding::kUserSpace;
    shared.run.processors = p;
    apps::LeqParams dedicated = shared;
    dedicated.run.dedicated_sequencer = true;
    const double ts = sim::to_sec(apps::run_leq(shared).elapsed);
    const double td = sim::to_sec(apps::run_leq(dedicated).elapsed);
    std::printf("    P=%-3zu shared %.0f s, dedicated %.0f s "
                "(paper at 16: 112 vs 94)\n",
                p, ts, td);
    report.add_metric("leq.shared.p" + std::to_string(p) + ".sec", ts,
                      metrics::Better::kLower, "sec");
    report.add_metric("leq.dedicated.p" + std::to_string(p) + ".sec", td,
                      metrics::Better::kLower, "sec");
  }

  if (!args.json_path.empty() && !bench::write_report(report, args.json_path)) {
    return 1;
  }
  return 0;
}
