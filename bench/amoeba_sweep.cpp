// Parallel experiment sweeps over the paper's parameter matrices.
//
// Expands a declarative scenario matrix (app/measurement × binding × node
// count [× message size] × N seed replicates), runs one fully isolated
// deterministic simulation per trial across host cores on the work-stealing
// pool, and aggregates per-cell statistics (mean/stddev/p50/p95/95% CI) into
// a versioned `amoeba-sweepreport/v1` JSON that report_compare gates with
// CI-overlap noise suppression.
//
// usage: amoeba_sweep [--matrix=table3|table1|smoke|failover]
//                     [--apps=tsp,asp,...]
//                     [--bindings=user,kernel,bypass] [--nodes=1,8,16,32]
//                     [--sizes=0,1024,...] [--seeds=N] [--base-seed=S]
//                     [--threads=N] [--json=FILE] [--quick] [--no-progress]
//                     [--verify-pool]
//
//   --matrix=table3   six Orca apps × bindings × node counts (default)
//   --matrix=table1   rpc/group latency × bindings × message sizes
//   --matrix=smoke    tiny CI matrix (asp × all three bindings × {1,4} nodes)
//   --matrix=failover sequencer-crash axis: group variant (classic single
//                     sequencer vs the replicated Paxos sequencer on both
//                     bindings) × crash point, TraceChecker-verified per
//                     trial (see tests/trace/failover_workload.h)
//   --quick           table3 node counts {1,8} instead of {1,8,16,32}
//   --threads=N       pool width (0 = all host cores)
//   --verify-pool     also run the matrix serially and assert the two
//                     reports are byte-identical; prints the speedup
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/ab.h"
#include "apps/asp.h"
#include "apps/leq.h"
#include "apps/rl.h"
#include "apps/sor.h"
#include "apps/tsp.h"
#include "bench/harness.h"
#include "core/testbed.h"
#include "sim/require.h"
#include "sweep/runner.h"
#include "tests/trace/failover_workload.h"

namespace {

using apps::RunConfig;
using metrics::Better;
using panda::Binding;

struct SweepArgs {
  std::string matrix = "table3";
  std::string apps_csv;      // empty = matrix default
  std::string bindings_csv = "user,kernel";
  std::string nodes_csv;     // empty = matrix default
  std::string sizes_csv;     // empty = matrix default (table1)
  std::uint64_t seeds = 5;
  std::uint64_t base_seed = 42;
  unsigned threads = 0;
  std::string json_path;
  bool quick = false;
  bool progress = true;
  bool verify_pool = false;
};

int usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [--matrix=table3|table1|smoke] [--apps=CSV] "
      "[--bindings=CSV] [--nodes=CSV] [--sizes=CSV] [--seeds=N] "
      "[--base-seed=S] [--threads=N] [--json=FILE] [--quick] "
      "[--no-progress] [--verify-pool]\n",
      prog);
  return 2;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : csv) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !s.empty();
}

bool parse_sweep_args(int argc, char** argv, SweepArgs& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eat = [&arg](const char* prefix, std::string& dst) {
      const std::size_t n = std::strlen(prefix);
      if (arg.rfind(prefix, 0) != 0) return false;
      dst = arg.substr(n);
      return true;
    };
    std::string v;
    if (eat("--matrix=", out.matrix) || eat("--apps=", out.apps_csv) ||
        eat("--bindings=", out.bindings_csv) || eat("--nodes=", out.nodes_csv) ||
        eat("--sizes=", out.sizes_csv) || eat("--json=", out.json_path)) {
      continue;
    }
    if (eat("--seeds=", v)) {
      if (!parse_u64(v, out.seeds) || out.seeds == 0) return false;
    } else if (eat("--base-seed=", v)) {
      if (!parse_u64(v, out.base_seed)) return false;
    } else if (eat("--threads=", v)) {
      std::uint64_t t = 0;
      if (!parse_u64(v, t)) return false;
      out.threads = static_cast<unsigned>(t);
    } else if (arg == "--quick") {
      out.quick = true;
    } else if (arg == "--no-progress") {
      out.progress = false;
    } else if (arg == "--verify-pool") {
      out.verify_pool = true;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                   arg.c_str());
      return false;
    }
  }
  return true;
}

/// Runs one Table 3 application trial; returns (elapsed sec, cluster stats).
std::pair<double, apps::ClusterStats> run_app(const std::string& app,
                                              const RunConfig& rc) {
  if (app == "tsp") {
    apps::TspParams p;
    p.run = rc;
    const auto r = apps::run_tsp(p);
    return {sim::to_sec(r.elapsed), r.stats};
  }
  if (app == "asp") {
    apps::AspParams p;
    p.run = rc;
    const auto r = apps::run_asp(p);
    return {sim::to_sec(r.elapsed), r.stats};
  }
  if (app == "ab") {
    apps::AbParams p;
    p.run = rc;
    const auto r = apps::run_ab(p);
    return {sim::to_sec(r.elapsed), r.stats};
  }
  if (app == "rl") {
    apps::RlParams p;
    p.run = rc;
    const auto r = apps::run_rl(p);
    return {sim::to_sec(r.elapsed), r.stats};
  }
  if (app == "sor") {
    apps::SorParams p;
    p.run = rc;
    const auto r = apps::run_sor(p);
    return {sim::to_sec(r.elapsed), r.stats};
  }
  if (app == "leq") {
    apps::LeqParams p;
    p.run = rc;
    const auto r = apps::run_leq(p);
    return {sim::to_sec(r.elapsed), r.stats};
  }
  sim::require(false, "amoeba_sweep: unknown app '" + app + "'");
  return {};
}

Binding parse_binding(const std::string& b) {
  sim::require(b == "user" || b == "kernel" || b == "bypass",
               "amoeba_sweep: unknown binding '" + b + "'");
  if (b == "bypass") return Binding::kBypass;
  return b == "kernel" ? Binding::kKernelSpace : Binding::kUserSpace;
}

/// Table 3 matrix: app × binding × processors, elapsed seconds per trial.
sweep::TrialFn table3_fn(const sweep::Matrix& matrix) {
  return [&matrix](const sweep::Trial& t) {
    RunConfig rc;
    rc.processors = std::strtoull(matrix.value(t, "nodes").c_str(), nullptr, 10);
    rc.binding = parse_binding(matrix.value(t, "binding"));
    rc.seed = t.seed;
    const auto [elapsed, stats] = run_app(matrix.value(t, "app"), rc);
    return std::vector<sweep::Sample>{
        {"elapsed.sec", elapsed, Better::kLower, "sec"},
        {"wire.bytes", static_cast<double>(stats.bytes_on_wire), Better::kInfo,
         "bytes"},
        {"segment.util.max", stats.max_segment_utilization, Better::kInfo},
    };
  };
}

/// Table 1 matrix: kind × binding × message size, latency ms per trial.
/// Each trial also runs the windowed telemetry sampler; its per-column
/// mean/max summaries ride along as informational per-trial metrics (window
/// rates depend on workload phase, so they never gate).
sweep::TrialFn table1_fn(const sweep::Matrix& matrix) {
  return [&matrix](const sweep::Trial& t) {
    const Binding binding = parse_binding(matrix.value(t, "binding"));
    const auto bytes = static_cast<std::size_t>(
        std::strtoull(matrix.value(t, "size").c_str(), nullptr, 10));
    const std::string& kind = matrix.value(t, "kind");
    core::SeriesCapture series;
    const sim::Time lat =
        kind == "rpc" ? core::measure_rpc_latency_series(
                            binding, bytes, 10, t.seed, sim::usec(500), series)
                      : core::measure_group_latency_series(
                            binding, bytes, 10, t.seed, sim::usec(500), series);
    std::vector<sweep::Sample> samples{
        {"latency.ms", sim::to_ms(lat), Better::kLower, "ms"},
    };
    for (const auto& [name, value] : series.summary) {
      samples.push_back({"series." + name, value, Better::kInfo, ""});
    }
    return samples;
  };
}

/// Failover matrix: group variant × crash point, 5-node crash workload per
/// trial. Every replicated trial is TraceChecker-verified inline (total
/// order, agreement, membership windows, no-loss) and must complete all
/// surviving sends — a violation aborts the sweep. The classic variant is
/// the control: it is *expected* to lose the tail, and its completion
/// fraction is recorded so the report shows the gap the replica set closes.
sweep::TrialFn failover_fn(const sweep::Matrix& matrix) {
  return [&matrix](const sweep::Trial& t) {
    using failover_test::CrashPoint;
    const std::string& group = matrix.value(t, "group");
    const std::string& crash = matrix.value(t, "crash");
    const bool replicated = group != "classic";
    const Binding binding = group == "paxos-user" ? Binding::kUserSpace
                                                  : Binding::kKernelSpace;
    const CrashPoint cp = crash == "early"  ? CrashPoint::kEarly
                          : crash == "mid" ? CrashPoint::kMid
                                           : CrashPoint::kLate;
    failover_test::FailoverResult r = failover_test::run_failover_workload(
        binding, replicated, t.seed, cp, /*loss=*/t.seed % 2 == 0);
    if (replicated) {
      for (const std::string& v : r.violations) {
        sim::require(false, "failover sweep: checker violation (" + group +
                                " seed " + std::to_string(t.seed) + "): " + v);
      }
      sim::require(r.sends_completed == r.sends_attempted,
                   "failover sweep: lost sends in " + group + " seed " +
                       std::to_string(t.seed));
    }
    const double frac =
        r.sends_attempted == 0
            ? 0.0
            : static_cast<double>(r.sends_completed) / r.sends_attempted;
    return std::vector<sweep::Sample>{
        {"completed.frac", frac, Better::kHigher, ""},
        {"violations", static_cast<double>(r.violations.size()),
         Better::kLower, ""},
        {"view.changes", static_cast<double>(r.view_changes), Better::kInfo,
         ""},
    };
  };
}

void print_cell_table(const sweep::SweepReport& report, const char* primary) {
  std::printf("\n%-52s | %3s %12s %10s %12s %12s\n", "cell", "n", "mean",
              "ci95", "p50", "p95");
  for (const sweep::SweepReport::Entry* e : report.sorted_entries()) {
    if (e->metric != primary) continue;
    std::printf("%-52s | %3zu %12.4g %10.3g %12.4g %12.4g\n", e->cell.c_str(),
                e->stats.n, e->stats.mean, e->stats.ci95, e->stats.p50,
                e->stats.p95);
  }
}

}  // namespace

int main(int argc, char** argv) {
  SweepArgs args;
  if (!parse_sweep_args(argc, argv, args)) return usage(argv[0]);

  sweep::Matrix matrix;
  const char* primary = "elapsed.sec";
  std::string default_apps = "tsp,asp,ab,rl,sor,leq";
  std::string default_nodes = args.quick ? "1,8" : "1,8,16,32";
  std::string bindings_csv = args.bindings_csv;
  if (args.matrix == "smoke") {
    default_apps = "asp";
    default_nodes = "1,4";
    // The smoke matrix is the tier-1 gate for every binding, so the
    // kernel-bypass transport rides along unless --bindings overrides it.
    if (bindings_csv == "user,kernel") bindings_csv = "user,kernel,bypass";
  }
  if (args.matrix == "table3" || args.matrix == "smoke") {
    matrix.axis("app", split_csv(args.apps_csv.empty() ? default_apps
                                                       : args.apps_csv));
    matrix.axis("binding", split_csv(bindings_csv));
    matrix.axis("nodes", split_csv(args.nodes_csv.empty() ? default_nodes
                                                          : args.nodes_csv));
  } else if (args.matrix == "table1") {
    matrix.axis("kind", {"rpc", "group"});
    matrix.axis("binding", split_csv(args.bindings_csv));
    matrix.axis("size", split_csv(args.sizes_csv.empty()
                                      ? "0,1024,2048,3072,4096"
                                      : args.sizes_csv));
    primary = "latency.ms";
  } else if (args.matrix == "failover") {
    matrix.axis("group", {"classic", "paxos-kernel", "paxos-user"});
    matrix.axis("crash", {"early", "mid", "late"});
    primary = "completed.frac";
  } else {
    std::fprintf(stderr, "%s: unknown matrix '%s'\n", argv[0],
                 args.matrix.c_str());
    return usage(argv[0]);
  }
  matrix.seeds(args.seeds, args.base_seed);

  const sweep::TrialFn fn = args.matrix == "table1"     ? table1_fn(matrix)
                            : args.matrix == "failover" ? failover_fn(matrix)
                                                        : table3_fn(matrix);

  bench::print_banner("Parameter sweep — parallel trials, aggregated statistics");
  const unsigned threads = sweep::resolve_threads(args.threads);
  std::printf("matrix %s: %zu cells x %llu seeds = %zu trials on %u threads\n",
              args.matrix.c_str(), matrix.cell_count(),
              static_cast<unsigned long long>(args.seeds),
              matrix.trial_count(), threads);

  const std::string name = "sweep_" + args.matrix;
  sweep::SweepOptions options;
  options.threads = args.threads;
  options.progress = args.progress;

  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  sweep::SweepReport report = sweep::run_sweep(matrix, fn, name, options);
  const double pool_sec =
      std::chrono::duration<double>(Clock::now() - t0).count();

  report.set_config("matrix", args.matrix);
  report.set_config("quick", args.quick);

  // The pool aggregates from per-trial slots in index order, so the report
  // must not depend on scheduling. --verify-pool proves it on this host by
  // rerunning the identical matrix single-threaded.
  if (args.verify_pool) {
    sweep::SweepOptions serial = options;
    serial.threads = 1;
    serial.progress = false;
    const auto s0 = Clock::now();
    sweep::SweepReport serial_report = sweep::run_sweep(matrix, fn, name, serial);
    const double serial_sec =
        std::chrono::duration<double>(Clock::now() - s0).count();
    serial_report.set_config("matrix", args.matrix);
    serial_report.set_config("quick", args.quick);
    if (serial_report.json() != report.json()) {
      std::fprintf(stderr,
                   "FAIL: pooled and serial sweep reports differ (thread-"
                   "schedule leaked into the aggregation)\n");
      return 1;
    }
    std::printf(
        "verify-pool: serial report byte-identical; pool %.2fs vs serial "
        "%.2fs (%.2fx on %u threads)\n",
        pool_sec, serial_sec, pool_sec > 0 ? serial_sec / pool_sec : 0.0,
        threads);
  } else {
    std::printf("sweep completed in %.2fs\n", pool_sec);
  }

  print_cell_table(report, primary);

  if (!args.json_path.empty() &&
      !bench::write_report_text(report.json(), args.json_path)) {
    return 1;
  }
  return 0;
}
