// Microbenchmarks of the discrete-event engine itself (google-benchmark):
// the simulator must stay fast enough that 32-node application runs finish
// in seconds of host time.
#include <benchmark/benchmark.h>

#include "sim/co.h"
#include "sim/cpu.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace {

void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < 1000; ++i) {
      s.after(i, [] {});
    }
    benchmark::DoNotOptimize(s.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventDispatch);

void BM_CoroutineChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    auto chain = [](sim::Simulator& sim) -> sim::Co<int> {
      int total = 0;
      for (int i = 0; i < 100; ++i) {
        co_await sim::delay(sim, 1);
        ++total;
      }
      co_return total;
    };
    benchmark::DoNotOptimize(sim::run(s, chain(s)));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_CoroutineChain);

void BM_CpuContention(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    sim::Cpu cpu(s);
    for (int i = 0; i < 64; ++i) {
      sim::spawn([](sim::Cpu& c) -> sim::Co<void> {
        for (int k = 0; k < 10; ++k) {
          co_await c.run(sim::usec(10), sim::Prio::kUser);
        }
      }(cpu));
    }
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 640);
}
BENCHMARK(BM_CpuContention);

void BM_CondVarPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    sim::CondVar a(s);
    sim::CondVar b(s);
    int rounds = 0;
    sim::spawn([](sim::CondVar& mine, sim::CondVar& theirs, int& r) -> sim::Co<void> {
      for (int i = 0; i < 100; ++i) {
        theirs.notify_one();
        co_await mine.wait();
        ++r;
      }
    }(a, b, rounds));
    sim::spawn([](sim::CondVar& mine, sim::CondVar& theirs, int& r) -> sim::Co<void> {
      for (int i = 0; i < 100; ++i) {
        co_await mine.wait();
        theirs.notify_one();
        ++r;
      }
    }(b, a, rounds));
    s.run();
    benchmark::DoNotOptimize(rounds);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_CondVarPingPong);

}  // namespace

BENCHMARK_MAIN();
