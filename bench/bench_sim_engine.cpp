// Microbenchmarks of the discrete-event engine itself (google-benchmark):
// the simulator must stay fast enough that 32-node application runs finish
// in seconds of host time.
//
// Custom main instead of BENCHMARK_MAIN(): --json=FILE emits a RunReport
// with each benchmark's real time. Host time is noisy across machines, so
// these are informational metrics — report_compare never gates on them.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "apps/sor.h"
#include "bench/harness.h"
#include "core/testbed.h"
#include "metrics/handles.h"
#include "metrics/registry.h"
#include "net/buffer.h"
#include "net/frame.h"
#include "net/network.h"
#include "net/nic.h"
#include "sim/co.h"
#include "sim/cpu.h"
#include "sim/partition.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/timer.h"

namespace {

// The headline events/sec gauge. Steady state: one long-lived simulator whose
// slab, heap, and allocator caches are warm — the regime a protocol run is in
// for millions of events. Each closure carries a 64-byte payload, the size of
// a typical frame-delivery capture (header fields plus buffer bookkeeping).
void BM_EventDispatch(benchmark::State& state) {
  sim::Simulator s;
  std::array<unsigned char, 64> payload{};
  unsigned long sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      s.after(i, [payload, &sink] { sink += payload[0]; });
    }
    benchmark::DoNotOptimize(s.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventDispatch);

// The retransmit-timer pattern: protocol layers schedule a timeout per send
// and cancel almost all of them when the ack arrives. Counts scheduled events
// as items; the drain at the end should find an empty queue.
void BM_TimerChurn(benchmark::State& state) {
  sim::Simulator s;
  std::deque<sim::Timer> timers;
  for (int i = 0; i < 64; ++i) timers.emplace_back(s);
  int fired = 0;
  for (auto _ : state) {
    for (int round = 0; round < 8; ++round) {
      for (auto& t : timers) t.schedule(sim::msec(1), [&fired] { ++fired; });
      for (auto& t : timers) t.cancel();
    }
    benchmark::DoNotOptimize(s.run());
  }
  state.SetItemsProcessed(state.iterations() * 64 * 8);
}
BENCHMARK(BM_TimerChurn);

void BM_CoroutineChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    auto chain = [](sim::Simulator& sim) -> sim::Co<int> {
      int total = 0;
      for (int i = 0; i < 100; ++i) {
        co_await sim::delay(sim, 1);
        ++total;
      }
      co_return total;
    };
    benchmark::DoNotOptimize(sim::run(s, chain(s)));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_CoroutineChain);

void BM_CpuContention(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    sim::Cpu cpu(s);
    for (int i = 0; i < 64; ++i) {
      sim::spawn([](sim::Cpu& c) -> sim::Co<void> {
        for (int k = 0; k < 10; ++k) {
          co_await c.run(sim::usec(10), sim::Prio::kUser);
        }
      }(cpu));
    }
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 640);
}
BENCHMARK(BM_CpuContention);

void BM_CondVarPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    sim::CondVar a(s);
    sim::CondVar b(s);
    int rounds = 0;
    sim::spawn([](sim::CondVar& mine, sim::CondVar& theirs, int& r) -> sim::Co<void> {
      for (int i = 0; i < 100; ++i) {
        theirs.notify_one();
        co_await mine.wait();
        ++r;
      }
    }(a, b, rounds));
    sim::spawn([](sim::CondVar& mine, sim::CondVar& theirs, int& r) -> sim::Co<void> {
      for (int i = 0; i < 100; ++i) {
        co_await mine.wait();
        theirs.notify_one();
        ++r;
      }
    }(b, a, rounds));
    s.run();
    benchmark::DoNotOptimize(rounds);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_CondVarPingPong);

// ---------------------------------------------------------------------------
// MessagePath: host cost of the message engine itself (net::Payload/Writer/
// Reader plus the metrics hot path). These mirror what every simulated
// protocol event does between charges: serialize a header, fragment and
// reassemble bulk data, bump counters. Pure host-time gauges — none of this
// touches simulated time.

// Serialize + parse the kernel group protocol's 52-byte header, the message
// shape every protocol layer produces constantly.
void BM_MsgPathHeaders(benchmark::State& state) {
  net::Writer w;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < 100; ++i) {
      w.u8(3).u8(0).u16(0);
      w.u32(1);
      w.u32(42 + i);
      w.u32(7);
      w.u64(0x123456789abcdefull + i);
      w.u32(41 + i);
      w.zeros(52 - 28);
      net::Payload wire = w.take();
      net::Reader r(wire);
      sink += r.u8();
      r.u8();
      r.u16();
      sink += r.u32() + r.u32() + r.u32();
      sink += r.u64();
      sink += r.u32();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_MsgPathHeaders);

// 1 MB of bulk zeros through the FLIP send/receive idiom: slice into MTU
// fragments behind a 16-byte fragment header, then gather each fragment into
// a pooled reassembly buffer on the "receive" side.
void BM_MsgPathBulk(benchmark::State& state) {
  constexpr std::size_t kBytes = std::size_t{1} << 20;
  constexpr std::size_t kFrag = 1448;
  net::Writer w;
  net::BufferPool pool;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    net::Payload msg = net::Payload::zeros(kBytes);
    auto buf = pool.acquire(kBytes);
    std::size_t off = 0;
    while (off < kBytes) {
      const std::size_t chunk = std::min(kFrag, kBytes - off);
      w.u16(1).u16(0);
      w.u32(7);
      w.u32(static_cast<std::uint32_t>(off));
      w.u32(static_cast<std::uint32_t>(kBytes));
      w.payload(msg.slice(off, chunk));
      net::Payload frame = w.take();
      net::Reader r(frame);
      r.u16();
      r.u16();
      r.u32();
      const std::uint32_t o = r.u32();
      r.u32();
      net::Payload data = r.rest();
      data.copy_out(0, data.size(), buf->data() + o);
      off += chunk;
    }
    net::Payload whole = net::Payload::from_shared(buf, buf->data(), kBytes);
    sink += whole.size();
    benchmark::DoNotOptimize(sink);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBytes));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBytes));
}
BENCHMARK(BM_MsgPathBulk);

// Per-event instrumentation through interned handles: resolve once, then one
// cached pointer increment per event.
void BM_MsgPathMetrics(benchmark::State& state) {
  sim::Simulator s;
  metrics::Metrics hub(s);
  const metrics::NodeMetrics nm(&hub, 0);
  metrics::CounterHandle c1 = nm.counter("flip.delivers");
  metrics::CounterHandle c2 = nm.counter("rpc.calls");
  metrics::CounterHandle c3 = nm.counter("group.sends");
  metrics::CounterHandle c4 = nm.counter("net.frames");
  for (auto _ : state) {
    for (int i = 0; i < 100; ++i) {
      c1.add();
      c2.add();
      c3.add();
      c4.add();
    }
  }
  state.SetItemsProcessed(state.iterations() * 400);
}
BENCHMARK(BM_MsgPathMetrics);

// The replaced idiom, kept as an in-report comparison: the two string-keyed
// tree walks per event that the handles intern away.
void BM_MsgPathMetricsLookup(benchmark::State& state) {
  sim::Simulator s;
  metrics::Metrics hub(s);
  for (auto _ : state) {
    for (int i = 0; i < 100; ++i) {
      hub.node(0).counter("flip.delivers").add();
      hub.node(0).counter("rpc.calls").add();
      hub.node(0).counter("group.sends").add();
      hub.node(0).counter("net.frames").add();
    }
  }
  state.SetItemsProcessed(state.iterations() * 400);
}
BENCHMARK(BM_MsgPathMetricsLookup);

// ---------------------------------------------------------------------------
// BM_SimRate: end-to-end sim-seconds per host-second, the headline gauge of
// the batching/cache work — everything between a benchmark timer start and
// stop is a complete protocol run (testbed boot, warm-up, measurement loop),
// exactly what an experiment binary pays per cell. Items are simulated
// nanoseconds advanced, so items_per_second * 1e-9 is sim-seconds per
// host-second; the RunReport publishes that conversion as `simrate.*` rows.

// An 8-byte RPC ping-pong loop (the Table 1 cell) on each protocol binding.
// 400 rounds per boot so the steady-state protocol path dominates the gauge
// rather than testbed construction.
void BM_SimRateRpc(benchmark::State& state, core::Binding binding) {
  std::uint64_t sim_ns = 0;
  for (auto _ : state) {
    sim_ns += static_cast<std::uint64_t>(
        core::rpc_loop_sim_time(binding, 8, /*rounds=*/400));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sim_ns));
}
BENCHMARK_CAPTURE(BM_SimRateRpc, kernel, core::Binding::kKernelSpace);
BENCHMARK_CAPTURE(BM_SimRateRpc, user, core::Binding::kUserSpace);
BENCHMARK_CAPTURE(BM_SimRateRpc, bypass, core::Binding::kBypass);

// A Table 3 application at test size: SOR's boundary-exchange pattern drives
// RPC, group, and guarded-continuation traffic on a 4-processor pool. The
// apps support the two paper bindings.
void BM_SimRateSor(benchmark::State& state, core::Binding binding) {
  apps::SorParams p;
  p.run.binding = binding;
  p.run.processors = 4;
  p.n = 48;
  p.iterations = 12;
  p.work_per_cell = sim::nsec(500);
  std::uint64_t sim_ns = 0;
  for (auto _ : state) {
    sim_ns += static_cast<std::uint64_t>(apps::run_sor(p).elapsed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sim_ns));
}
BENCHMARK_CAPTURE(BM_SimRateSor, kernel, core::Binding::kKernelSpace);
BENCHMARK_CAPTURE(BM_SimRateSor, user, core::Binding::kUserSpace);

// ---------------------------------------------------------------------------
// Partitioned topologies: the conservative parallel core driving multi-segment
// pools. Each segment runs mostly partition-local ping-pong traffic plus an
// inter-segment beacon ring that exercises the cross-partition mailbox path.
// The /S/1 rows are the single-engine baseline for the same topology; the
// /S/S rows run one engine (and one worker) per segment group, so
// real_time(S/1) / real_time(S/S) is the speedup-vs-partitions gauge the
// RunReport publishes.

void BM_PartitionedTopology(benchmark::State& state) {
  const auto segments = static_cast<std::size_t>(state.range(0));
  const auto partitions = static_cast<unsigned>(state.range(1));
  constexpr std::size_t kPerSegment = 8;
  constexpr std::size_t kBytes = 64;
  constexpr sim::Time kHorizon = sim::msec(20);
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::PartitionedSimulator ps(
        sim::PartitionedSimulator::Config{partitions, partitions, 42});
    net::NetworkConfig cfg;
    cfg.nodes_per_segment = kPerSegment;
    cfg.wire.ns_per_byte = 8;  // gigabit-class wire keeps every window busy
    // The switch latency is the conservative lookahead, so it sets the
    // window-sync cadence: a coarse store-and-forward switch amortizes each
    // barrier over hundreds of partition-local events, which is the regime
    // where the parallel core pays off (the /S/1 rows time the identical
    // topology on one engine).
    cfg.switch_forward_latency = sim::usec(100);
    net::Network n(ps, cfg);
    const std::size_t total = segments * kPerSegment;
    for (std::size_t i = 0; i < total; ++i) n.add_node();
    const auto ping = [](net::NodeId to) {
      net::Frame f;
      f.dst = net::Network::mac_of(to);
      f.payload = net::Payload::zeros(kBytes);
      return f;
    };
    for (std::size_t s = 0; s < segments; ++s) {
      const net::NodeId base = static_cast<net::NodeId>(s * kPerSegment);
      // Three partition-local ping-pong pairs per segment.
      for (net::NodeId p = 0; p < 6; p += 2) {
        const auto bounce = [&n, &ping](net::NodeId self, net::NodeId peer) {
          n.nic(self).set_rx_handler([&n, &ping, self, peer](const net::Frame&) {
            n.nic(self).send(ping(peer));
          });
        };
        bounce(base + p, base + p + 1);
        bounce(base + p + 1, base + p);
        n.nic(base + p).send(ping(base + p + 1));
      }
      // Beacon ring across segments: one frame per segment circulating
      // through the switch, crossing partitions whenever neighbours map to
      // different engines.
      const net::NodeId ring = base + 6;
      const net::NodeId next = static_cast<net::NodeId>(
          ((s + 1) % segments) * kPerSegment + 6);
      n.nic(ring).set_rx_handler([&n, &ping, ring, next](const net::Frame&) {
        n.nic(ring).send(ping(next));
      });
      n.nic(ring).send(ping(next));
    }
    ps.run_until(kHorizon);
    events += ps.events_executed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_PartitionedTopology)
    ->Args({4, 1})
    ->Args({4, 4})
    ->Args({8, 1})
    ->Args({8, 8});

/// Console output as usual, plus a (name, adjusted real time) record per run
/// for the RunReport.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Result {
    std::string name;
    double real_time = 0.0;       // in the run's time unit (ns by default)
    double items_per_second = 0.0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Result r;
      r.name = run.benchmark_name();
      r.real_time = run.GetAdjustedRealTime();
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) r.items_per_second = it->second;
      results_.push_back(std::move(r));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::vector<Result>& results() const noexcept {
    return results_;
  }

 private:
  std::vector<Result> results_;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Args args;
  if (!bench::parse_args(argc, argv, bench::kBenchmark, args)) return 2;

  // --profile=FILE: causal profile of a protocol run driven by this engine
  // (user-space 8-byte RPC), for before/after engine-work comparisons.
  if (!args.profile_path.empty()) {
    const core::TracedRun run =
        core::traced_rpc_run(core::Binding::kUserSpace, 8);
    return bench::write_profile(run.events, "sim_engine:rpc_user_8B",
                                args.profile_path)
               ? 0
               : 1;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!args.json_path.empty()) {
    metrics::RunReport report("sim_engine");
    // Headline gauges: dispatch throughput of the scheduling core, and the
    // message-engine throughputs the zero-copy work targets.
    for (const auto& r : reporter.results()) {
      if (r.items_per_second <= 0.0) continue;
      if (r.name == "BM_EventDispatch") {
        report.add_metric("events_per_sec", r.items_per_second,
                          metrics::Better::kHigher, "events/s");
      } else if (r.name == "BM_MsgPathHeaders") {
        report.add_metric("msgpath.headers_per_sec", r.items_per_second,
                          metrics::Better::kHigher, "headers/s");
      } else if (r.name == "BM_MsgPathBulk") {
        report.add_metric("msgpath.bulk_bytes_per_sec", r.items_per_second,
                          metrics::Better::kHigher, "bytes/s");
      } else if (r.name == "BM_MsgPathMetrics") {
        report.add_metric("msgpath.metric_incr_per_sec", r.items_per_second,
                          metrics::Better::kHigher, "increments/s");
      } else if (r.name.rfind("BM_SimRateRpc/", 0) == 0) {
        // Items are simulated nanoseconds, so items/s * 1e-9 is sim-seconds
        // per host-second.
        report.add_metric("simrate.rpc_" + r.name.substr(14),
                          r.items_per_second * 1e-9, metrics::Better::kHigher,
                          "sim_s/s");
      } else if (r.name.rfind("BM_SimRateSor/", 0) == 0) {
        report.add_metric("simrate.sor_" + r.name.substr(14),
                          r.items_per_second * 1e-9, metrics::Better::kHigher,
                          "sim_s/s");
      }
    }
    // Speedup-vs-partitions: same topology, single engine vs one engine per
    // segment group. Host-time ratio, so informational like the other rows.
    const auto real_time_of = [&reporter](const std::string& name) {
      for (const auto& r : reporter.results()) {
        if (r.name == name) return r.real_time;
      }
      return 0.0;
    };
    for (const int segments : {4, 8}) {
      const std::string prefix =
          "BM_PartitionedTopology/" + std::to_string(segments) + "/";
      const double base = real_time_of(prefix + "1");
      const double par = real_time_of(prefix + std::to_string(segments));
      if (base > 0.0 && par > 0.0) {
        report.add_metric(
            "partitioned.speedup_" + std::to_string(segments) + "seg",
            base / par, metrics::Better::kHigher, "x");
      }
    }
    for (const auto& r : reporter.results()) {
      report.add_metric(r.name + ".real_time_ns", r.real_time,
                        metrics::Better::kInfo, "ns");
      if (r.items_per_second > 0.0) {
        // The dispatch-throughput row is a CI gate (with the simrate.* rows
        // above); every other per-run row stays informational.
        report.add_metric(r.name + ".items_per_second", r.items_per_second,
                          r.name == "BM_EventDispatch" ? metrics::Better::kHigher
                                                       : metrics::Better::kInfo,
                          "items/s");
      }
    }
    if (!bench::write_report(report, args.json_path)) return 1;
  }
  return 0;
}
