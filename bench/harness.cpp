#include "bench/harness.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "trace/chrome_export.h"
#include "trace/profile.h"
#include "trace/trace_io.h"

namespace bench {

namespace {

bool take_value(std::string_view arg, std::string_view flag, std::string& out) {
  if (!arg.starts_with(flag)) return false;
  out = std::string(arg.substr(flag.size()));
  return true;
}

void print_usage(const char* prog, unsigned accepts) {
  std::fprintf(stderr, "usage: %s [--json=FILE] [--profile=FILE]", prog);
  if (accepts & kTrace) std::fprintf(stderr, " [--trace=FILE]");
  if (accepts & kApp) std::fprintf(stderr, " [--app=NAME]");
  if (accepts & kQuick) std::fprintf(stderr, " [--quick]");
  if (accepts & kThreads) std::fprintf(stderr, " [--threads=N]");
  if (accepts & kBenchmark) std::fprintf(stderr, " [--benchmark...]");
  std::fprintf(stderr, "\n");
}

}  // namespace

bool parse_args(int& argc, char** argv, unsigned accepts, Args& out) {
  int kept = 1;  // argv[0] stays; passthrough flags are compacted behind it
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (take_value(arg, "--json=", out.json_path)) {
      if (out.json_path.empty()) {
        std::fprintf(stderr, "%s: --json needs a file name\n", argv[0]);
        return false;
      }
      continue;
    }
    if (take_value(arg, "--profile=", out.profile_path)) {
      if (out.profile_path.empty()) {
        std::fprintf(stderr, "%s: --profile needs a file name\n", argv[0]);
        return false;
      }
      continue;
    }
    if ((accepts & kTrace) && take_value(arg, "--trace=", out.trace_path)) {
      if (out.trace_path.empty()) {
        std::fprintf(stderr, "%s: --trace needs a file name\n", argv[0]);
        return false;
      }
      continue;
    }
    if ((accepts & kApp) && take_value(arg, "--app=", out.app)) continue;
    if ((accepts & kQuick) && arg == "--quick") {
      out.quick = true;
      continue;
    }
    if (accepts & kThreads) {
      if (std::string v; take_value(arg, "--threads=", v)) {
        char* end = nullptr;
        const unsigned long n = std::strtoul(v.c_str(), &end, 10);
        if (v.empty() || *end != '\0') {
          std::fprintf(stderr, "%s: --threads needs a number\n", argv[0]);
          return false;
        }
        out.threads = static_cast<unsigned>(n);
        continue;
      }
    }
    if ((accepts & kBenchmark) && arg.starts_with("--benchmark")) {
      argv[kept++] = argv[i];
      continue;
    }
    std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], argv[i]);
    print_usage(argv[0], accepts);
    return false;
  }
  argc = kept;
  argv[argc] = nullptr;
  return true;
}

void print_banner(const char* title) {
  const std::size_t n = std::strlen(title);
  std::string bar(n, '=');
  std::printf("%s\n%s\n%s\n", bar.c_str(), title, bar.c_str());
}

double print_ledger_delta(const char* row_label, const sim::Ledger& user,
                          const sim::Ledger& kernel, int rounds,
                          metrics::RunReport* report) {
  std::printf("%-22s | %-18s | %-18s | %s\n", row_label, "user count/us",
              "kernel count/us", "delta us");
  double total_delta = 0.0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(sim::Mechanism::kCount);
       ++i) {
    const auto m = static_cast<sim::Mechanism>(i);
    const auto& u = user.get(m);
    const auto& k = kernel.get(m);
    if (u.count == 0 && k.count == 0) continue;
    const double du = sim::to_us(u.total) / rounds;
    const double dk = sim::to_us(k.total) / rounds;
    total_delta += du - dk;
    std::printf("%-22s | %5.1f x %7.1f | %5.1f x %7.1f | %+8.1f\n",
                std::string(sim::mechanism_name(m)).c_str(),
                static_cast<double>(u.count) / rounds, du,
                static_cast<double>(k.count) / rounds, dk, du - dk);
    if (report != nullptr) {
      const std::string name(sim::mechanism_name(m));
      report->add_metric("user." + name + ".us_per_round", du,
                         metrics::Better::kLower, "us");
      report->add_metric("kernel." + name + ".us_per_round", dk,
                         metrics::Better::kLower, "us");
    }
  }
  if (report != nullptr) {
    report->add_metric("total_cpu_delta.us_per_round", total_delta,
                       metrics::Better::kLower, "us");
    report->add_ledger("user", user);
    report->add_ledger("kernel", kernel);
  }
  return total_delta;
}

bool write_trace(const std::vector<trace::Event>& events,
                 const std::string& path) {
  const bool chrome = path.size() >= 5 &&
                      path.compare(path.size() - 5, 5, ".json") == 0;
  const bool ok = chrome ? trace::write_chrome_trace_file(events, path)
                         : trace::write_trace_text_file(events, path);
  if (!ok) {
    std::fprintf(stderr, "error: cannot write trace to %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  std::printf("wrote %zu trace events to %s (%s)\n", events.size(),
              path.c_str(), chrome ? "chrome://tracing" : "amoeba-trace/v1");
  return true;
}

bool write_profile(const std::vector<trace::Event>& events,
                   const std::string& source, const std::string& path) {
  const trace::Profile p = trace::profile_trace(events);
  std::string why;
  if (!trace::conservation_ok(p, &why)) {
    std::fprintf(stderr, "error: profile conservation failed for %s: %s\n",
                 source.c_str(), why.c_str());
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write profile to %s: %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  const std::string json = trace::profile_json(p, source);
  const bool wrote = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::fprintf(stderr, "error: cannot write profile to %s: %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  std::printf(
      "wrote causal profile (%zu ops, %.1f us on critical paths) to %s\n",
      static_cast<std::size_t>(p.ops_complete),
      static_cast<double>(p.on_path_total()) / 1000.0, path.c_str());
  return true;
}

bool write_report(const metrics::RunReport& report, const std::string& path) {
  const std::string stamp = metrics::RunReport::git_stamp();
  if (stamp.find("-dirty") != std::string::npos) {
    // A committed baseline must be reproducible from its git stamp; a -dirty
    // stamp names a tree state nobody can check out again.
    std::fprintf(stderr,
                 "WARNING: report %s is stamped \"%s\" — the build came from "
                 "an uncommitted tree. Do not commit it as a baseline; commit, "
                 "reconfigure, and rerun for a clean provenance stamp.\n",
                 path.c_str(), stamp.c_str());
  }
  if (!report.write_file(path)) {
    std::fprintf(stderr, "error: cannot write report to %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  std::printf("wrote run report to %s\n", path.c_str());
  return true;
}

bool write_report_text(const std::string& json, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write report to %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  const bool wrote = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::fprintf(stderr, "error: cannot write report to %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  std::printf("wrote sweep report to %s\n", path.c_str());
  return true;
}

}  // namespace bench
