// Reproduces Table 2 of the paper: communication throughputs.
//
//            user-space   kernel-space
//   RPC      825 KB/s     897 KB/s
//   group    941 KB/s     941 KB/s
//
// RPC throughput is stop-and-wait over 8000-byte requests with empty
// replies; group throughput has several members sending 8000-byte messages
// in parallel, which saturates the 10 Mbit/s Ethernet — so both bindings
// converge to the same number there.
//
// --json=FILE emits the four cells as higher-is-better metrics; the
// committed BENCH_table2.json baseline is produced from this bench.
#include <cstdio>

#include "bench/harness.h"
#include "core/testbed.h"

int main(int argc, char** argv) {
  bench::Args args;
  if (!bench::parse_args(argc, argv, bench::kNone, args)) return 2;

  // --profile=FILE: causal profile of the throughput workload's unit — one
  // stream of 8000-byte user-space RPCs (three fragments each).
  if (!args.profile_path.empty()) {
    const core::TracedRun run =
        core::traced_rpc_run(core::Binding::kUserSpace, 8000, 25);
    return bench::write_profile(run.events, "table2_throughput:rpc_user_8000B",
                                args.profile_path)
               ? 0
               : 1;
  }

  bench::print_banner(
      "Table 2 — Communication Throughputs (paper vs. simulation)");
  std::printf("\n");

  const double rpc_user = core::measure_rpc_throughput_kbs(core::Binding::kUserSpace);
  const double rpc_kernel =
      core::measure_rpc_throughput_kbs(core::Binding::kKernelSpace);
  const double grp_user =
      core::measure_group_throughput_kbs(core::Binding::kUserSpace);
  const double grp_kernel =
      core::measure_group_throughput_kbs(core::Binding::kKernelSpace);
  // Kernel-bypass runs on the modern preset (1 GB/s wire), so its column is
  // not paper-comparable — it quantifies how far the protocol-in-NIC answer
  // moves the bottleneck once the host stack is out of the way.
  const double rpc_bypass =
      core::measure_rpc_throughput_kbs(core::Binding::kBypass);
  const double grp_bypass =
      core::measure_group_throughput_kbs(core::Binding::kBypass);
  // The replicated-sequencer (multi-Paxos) variant has no paper column — the
  // paper's group protocol is the classic single sequencer — so these rows
  // quantify what crash-survivability costs against the paper's numbers.
  const double grp_pax_user = core::measure_group_throughput_kbs(
      core::Binding::kUserSpace, 4, 8000, 12, 42, /*replicated=*/true);
  const double grp_pax_kernel = core::measure_group_throughput_kbs(
      core::Binding::kKernelSpace, 4, 8000, 12, 42, /*replicated=*/true);

  std::printf("%-12s | %-21s | %-21s\n", "", "paper (KB/s)",
              "measured (KB/s)");
  std::printf("%-12s | user %5.0f krnl %5.0f | user %5.0f krnl %5.0f\n", "RPC",
              825.0, 897.0, rpc_user, rpc_kernel);
  std::printf("%-12s | user %5.0f krnl %5.0f | user %5.0f krnl %5.0f\n",
              "group", 941.0, 941.0, grp_user, grp_kernel);
  std::printf("%-12s | %-21s | user %5.0f krnl %5.0f\n", "paxos::group",
              "(no paper column)", grp_pax_user, grp_pax_kernel);
  std::printf("%-12s | %-21s | rpc %7.0f grp %7.0f\n", "bypass",
              "(modern preset)", rpc_bypass, grp_bypass);

  std::printf("\nShape checks:\n");
  std::printf("  kernel RPC > user RPC:            %s\n",
              rpc_kernel > rpc_user ? "yes" : "NO");
  std::printf("  group throughputs within 15%%:     %s "
              "(Ethernet is the bottleneck for both)\n",
              grp_user / grp_kernel > 0.85 && grp_user / grp_kernel < 1.15
                  ? "yes"
                  : "NO");

  if (!args.json_path.empty()) {
    metrics::RunReport report("table2_throughput");
    report.set_config("request_bytes", std::int64_t{8000});
    report.set_config("seed", std::uint64_t{42});
    report.add_metric("rpc_user.kbs", rpc_user, metrics::Better::kHigher,
                      "KB/s");
    report.add_metric("rpc_kernel.kbs", rpc_kernel, metrics::Better::kHigher,
                      "KB/s");
    report.add_metric("group_user.kbs", grp_user, metrics::Better::kHigher,
                      "KB/s");
    report.add_metric("group_kernel.kbs", grp_kernel, metrics::Better::kHigher,
                      "KB/s");
    report.add_metric("group_paxos_user.kbs", grp_pax_user,
                      metrics::Better::kHigher, "KB/s");
    report.add_metric("group_paxos_kernel.kbs", grp_pax_kernel,
                      metrics::Better::kHigher, "KB/s");
    report.add_metric("rpc_bypass.kbs", rpc_bypass, metrics::Better::kHigher,
                      "KB/s");
    report.add_metric("group_bypass.kbs", grp_bypass, metrics::Better::kHigher,
                      "KB/s");
    if (!bench::write_report(report, args.json_path)) return 1;
  }
  return 0;
}
