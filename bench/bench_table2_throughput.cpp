// Reproduces Table 2 of the paper: communication throughputs.
//
//            user-space   kernel-space
//   RPC      825 KB/s     897 KB/s
//   group    941 KB/s     941 KB/s
//
// RPC throughput is stop-and-wait over 8000-byte requests with empty
// replies; group throughput has several members sending 8000-byte messages
// in parallel, which saturates the 10 Mbit/s Ethernet — so both bindings
// converge to the same number there.
#include <cstdio>

#include "core/testbed.h"

int main() {
  std::printf("=========================================================\n");
  std::printf("Table 2 — Communication Throughputs (paper vs. simulation)\n");
  std::printf("=========================================================\n\n");

  const double rpc_user = core::measure_rpc_throughput_kbs(core::Binding::kUserSpace);
  const double rpc_kernel =
      core::measure_rpc_throughput_kbs(core::Binding::kKernelSpace);
  const double grp_user =
      core::measure_group_throughput_kbs(core::Binding::kUserSpace);
  const double grp_kernel =
      core::measure_group_throughput_kbs(core::Binding::kKernelSpace);

  std::printf("%-8s | %-21s | %-21s\n", "", "paper (KB/s)", "measured (KB/s)");
  std::printf("%-8s | user %5.0f krnl %5.0f | user %5.0f krnl %5.0f\n", "RPC",
              825.0, 897.0, rpc_user, rpc_kernel);
  std::printf("%-8s | user %5.0f krnl %5.0f | user %5.0f krnl %5.0f\n", "group",
              941.0, 941.0, grp_user, grp_kernel);

  std::printf("\nShape checks:\n");
  std::printf("  kernel RPC > user RPC:            %s\n",
              rpc_kernel > rpc_user ? "yes" : "NO");
  std::printf("  group throughputs within 15%%:     %s "
              "(Ethernet is the bottleneck for both)\n",
              grp_user / grp_kernel > 0.85 && grp_user / grp_kernel < 1.15
                  ? "yes"
                  : "NO");
  return 0;
}
