// Compare two RunReport (amoeba-runreport/v1), SweepReport
// (amoeba-sweepreport/v1) or profiler (amoeba-profile/v1) JSON files and
// flag regressions.
//
// usage: report_compare [--threshold=PCT] [--show-info] [--warn-only]
//                       [--gate-profiles] [--gate=SUBSTR]... OLD NEW
//
// Run reports: every direction-tagged metric present in both reports is
// compared by relative delta; a wrong-direction move beyond the threshold is
// a regression. Histogram percentiles are compared as lower-is-better, and
// `series` telemetry columns ride along as informational means.
// Sweep reports: per-cell metric means are compared the same way, but a move
// whose 95% confidence intervals overlap is reported as "ci-overlap" noise
// and never gates.
// Profiles: per-mechanism on-path time and per-op latency percentiles are
// compared as lower-is-better, but warn-only by default (pass
// --gate-profiles to make profile regressions fail). Mixing schemas is an
// error.
// Metrics the baseline has never seen print as "new row (no baseline)" info
// lines with their measured value and never fail the comparison; refresh the
// baseline to start gating them.
// --gate=SUBSTR (repeatable) selects which rows can fail the run: a
// regression only produces exit code 1 if the metric name contains one of
// the gate substrings; every other row is implicitly warn-only (printed as
// REGRESSED, exit 0). Without --gate, every tracked row gates, as before.
// This is how CI hard-gates the deterministic headline rows of a report
// whose remaining rows are host-time-noisy.
// Exit codes: 0 no regression, 1 regression found (0 with --warn-only, for
// rows matching no --gate when gates are given, and for profiles without
// --gate-profiles), 2 usage or parse error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/compare.h"

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--threshold=PCT] [--show-info] [--warn-only] "
               "[--gate-profiles] [--gate=SUBSTR]... OLD.json NEW.json\n",
               prog);
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

const char* arrow(const metrics::MetricDelta& d) {
  if (d.regression) return "REGRESSED";
  if (d.improvement) return "improved";
  if (d.noise_gated) return "ci-overlap";
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  metrics::CompareOptions options;
  bool warn_only = false;
  bool gate_profiles = false;
  std::vector<std::string> gates;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      char* end = nullptr;
      options.threshold_pct = std::strtod(arg.c_str() + 12, &end);
      if (end == nullptr || *end != '\0' || options.threshold_pct < 0.0) {
        std::fprintf(stderr, "%s: bad threshold '%s'\n", argv[0], argv[i]);
        return 2;
      }
    } else if (arg == "--show-info") {
      options.show_info = true;
    } else if (arg == "--warn-only") {
      warn_only = true;
    } else if (arg == "--gate-profiles") {
      gate_profiles = true;
    } else if (arg.rfind("--gate=", 0) == 0) {
      const std::string pattern = arg.substr(7);
      if (pattern.empty()) {
        std::fprintf(stderr, "%s: empty --gate pattern\n", argv[0]);
        return 2;
      }
      gates.push_back(pattern);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], argv[i]);
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) return usage(argv[0]);

  std::string old_text;
  std::string new_text;
  if (!read_file(files[0], old_text)) {
    std::fprintf(stderr, "%s: cannot read %s\n", argv[0], files[0].c_str());
    return 2;
  }
  if (!read_file(files[1], new_text)) {
    std::fprintf(stderr, "%s: cannot read %s\n", argv[0], files[1].c_str());
    return 2;
  }

  const metrics::CompareResult result =
      metrics::compare_report_texts(old_text, new_text, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[0], result.error.c_str());
    return 2;
  }

  std::printf("comparing %s -> %s (threshold %.1f%%)\n", files[0].c_str(),
              files[1].c_str(), options.threshold_pct);
  std::printf("%-44s | %12s | %12s | %8s | %s\n", "metric", "old", "new",
              "delta", "");
  int shown = 0;
  for (const auto& d : result.deltas) {
    // Always print regressions/improvements; print stable gated metrics too
    // so the table is a complete picture, but skip unchanged info metrics
    // unless --show-info.
    if (d.better == "info" && !options.show_info && !d.regression) continue;
    // Sweep tables can be large; unchanged gated means stay useful, but
    // suppress the unmoved informational companions (.n, .p95) by default.
    std::printf("%-44s | %12.4g | %12.4g | %+7.2f%% | %s\n", d.name.c_str(),
                d.old_value, d.new_value, d.delta_pct, arrow(d));
    ++shown;
  }
  if (shown == 0) std::printf("(no comparable tracked metrics)\n");
  // Rows the baseline predates render with their measured value: a metric
  // with no baseline has no direction to regress in, so "new row" is
  // informational, never a failure. Refreshing the baseline promotes it.
  for (const auto& d : result.added) {
    std::printf("%-44s | %12s | %12.4g | %8s | new row (no baseline)\n",
                d.name.c_str(), "-", d.new_value, "-");
  }
  for (const auto& name : result.only_old) {
    std::printf("only in old: %s\n", name.c_str());
  }

  if (result.regressed) {
    // With --gate patterns, only a regression on a matching row fails the
    // run; everything else stays a warning.
    bool gated_hit = gates.empty();
    for (const auto& d : result.deltas) {
      if (!d.regression) continue;
      for (const auto& g : gates) {
        if (d.name.find(g) != std::string::npos) gated_hit = true;
      }
    }
    const bool soft =
        warn_only || !gated_hit || (result.advisory && !gate_profiles);
    std::printf("RESULT: regression beyond %.1f%% threshold%s\n",
                options.threshold_pct,
                warn_only    ? " (warn-only)"
                : !gated_hit ? " (warn-only: no --gate row regressed)"
                : result.advisory && !gate_profiles ? " (profile: advisory)"
                                                    : "");
    return soft ? 0 : 1;
  }
  std::printf("RESULT: ok\n");
  return 0;
}
