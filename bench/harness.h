// Shared scaffolding for the bench binaries.
//
// Every bench keeps its human-readable printf tables and additionally accepts
// `--json=FILE` to emit a versioned metrics::RunReport for report_compare.
// The helpers here centralise the bits that used to be copy-pasted per bench:
// option parsing (with *loud* failure on unknown or malformed flags — the old
// per-bench strncmp loops silently ignored typos like `--trace foo` and ran
// the wrong mode), banner/table printing, the §4.2/§4.3 per-mechanism
// user-vs-kernel delta table, and file writing that reports errors on stderr
// instead of exiting 0 with nothing written.
#pragma once

#include <string>
#include <vector>

#include "metrics/report.h"
#include "sim/ledger.h"
#include "trace/tracer.h"

namespace bench {

/// Optional flags a bench opts into (--json=FILE and --profile=FILE are
/// always accepted).
enum Accepts : unsigned {
  kNone = 0,
  kTrace = 1u << 0,      // --trace=FILE   trace dump (.json Chrome, else raw)
  kApp = 1u << 1,        // --app=NAME     application filter (table 3)
  kQuick = 1u << 2,      // --quick        reduced processor sweep
  kBenchmark = 1u << 3,  // --benchmark*   passed through to google-benchmark
  kThreads = 1u << 4,    // --threads=N    sweep-pool width (0 = all cores)
};

struct Args {
  std::string json_path;     // empty = no RunReport
  std::string trace_path;    // empty = no trace run
  std::string profile_path;  // empty = no causal profile run
  std::string app;
  bool quick = false;
  unsigned threads = 0;
};

/// Parse argv into `out`. Unknown or malformed options print an error plus
/// the accepted flag list to stderr and return false; callers `return 2`.
/// Consumed flags are removed from argv (argc updated), so what remains —
/// only ever `--benchmark*` passthrough flags — can go straight to
/// benchmark::Initialize.
[[nodiscard]] bool parse_args(int& argc, char** argv, unsigned accepts,
                              Args& out);

/// `==== title ====` banner box.
void print_banner(const char* title);

/// The per-mechanism user-vs-kernel ledger delta table shared by the two
/// breakdown benches (§4.2/§4.3), normalised per round. Returns the total
/// CPU-time delta in us/round, and when `report` is non-null also records
/// each mechanism's per-round times plus both full ledgers into it.
double print_ledger_delta(const char* row_label, const sim::Ledger& user,
                          const sim::Ledger& kernel, int rounds,
                          metrics::RunReport* report = nullptr);

/// Write a trace dump; the format follows the extension — `.json` emits
/// Chrome trace-event JSON (chrome://tracing, with causal flow arrows),
/// anything else the raw `amoeba-trace/v1` text the profiler reads. On
/// failure prints to stderr and returns false, on success prints the event
/// count + path to stdout.
[[nodiscard]] bool write_trace(const std::vector<trace::Event>& events,
                               const std::string& path);

/// Build a causal profile from a traced event stream and write it as
/// `amoeba-profile/v1` JSON (the `source` string labels the run). Prints a
/// one-line summary; a conservation divergence (attributed time != traced
/// ledger) is reported on stderr and fails the write.
[[nodiscard]] bool write_profile(const std::vector<trace::Event>& events,
                                 const std::string& source,
                                 const std::string& path);

/// Write a RunReport; on failure prints to stderr and returns false, on
/// success prints the path to stdout.
[[nodiscard]] bool write_report(const metrics::RunReport& report,
                                const std::string& path);

/// Write an already-serialized report (e.g. a sweep::SweepReport's json())
/// with the same error reporting as write_report.
[[nodiscard]] bool write_report_text(const std::string& json,
                                     const std::string& path);

}  // namespace bench
