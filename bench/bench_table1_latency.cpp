// Reproduces Table 1 of the paper: communication latencies (ms) for the
// Panda system-layer primitives (unicast/multicast over FLIP), the RPC
// protocols, and the group protocols, at message sizes 0..4 KB.
//
// Paper values are from the 50 MHz SPARC / 10 Mbit/s Ethernet testbed; the
// simulation is calibrated to the same cost model, so values should land
// close and — more importantly — the *shape* must hold: kernel beats user
// space by ~0.3 ms on RPC and ~0.23 ms on group at every size, latency steps
// at fragment boundaries, 3 KB and 4 KB nearly tie.
#include <cstdio>
#include <vector>

#include "core/testbed.h"

namespace {

struct Row {
  std::size_t bytes;
  double paper_unicast, paper_multicast;
  double paper_rpc_user, paper_rpc_kernel;
  double paper_group_user, paper_group_kernel;
};

// Table 1 of the paper, in milliseconds.
constexpr Row kPaper[] = {
    {0, 0.53, 0.62, 1.56, 1.27, 1.67, 1.44},
    {1024, 1.50, 1.58, 2.53, 2.23, 3.59, 3.38},
    {2048, 2.50, 2.55, 3.60, 3.40, 3.67, 3.44},
    {3072, 3.72, 3.74, 4.77, 4.48, 4.84, 4.56},
    {4096, 4.18, 4.23, 5.27, 5.06, 5.35, 5.25},
};

void print_header(const char* title) {
  std::printf("\n%s\n", title);
  std::printf("%-6s | %-17s | %-17s\n", "size", "paper (ms)", "measured (ms)");
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Table 1 — Communication Latencies (paper vs. this simulation)\n");
  std::printf("==============================================================\n");

  print_header("System layer: unicast / multicast (user space)");
  for (const Row& row : kPaper) {
    const double uni = sim::to_ms(core::measure_sys_unicast_latency(row.bytes));
    const double mc = sim::to_ms(core::measure_sys_multicast_latency(row.bytes));
    std::printf("%4zu K | uni %5.2f mc %5.2f | uni %5.2f mc %5.2f\n",
                row.bytes / 1024, row.paper_unicast, row.paper_multicast, uni,
                mc);
  }

  print_header("RPC: user space vs kernel space");
  for (const Row& row : kPaper) {
    const double user =
        sim::to_ms(core::measure_rpc_latency(core::Binding::kUserSpace, row.bytes));
    const double kernel = sim::to_ms(
        core::measure_rpc_latency(core::Binding::kKernelSpace, row.bytes));
    std::printf("%4zu K | user %5.2f krnl %5.2f | user %5.2f krnl %5.2f (gap %+0.2f)\n",
                row.bytes / 1024, row.paper_rpc_user, row.paper_rpc_kernel, user,
                kernel, user - kernel);
  }

  print_header("Group: user space vs kernel space");
  for (const Row& row : kPaper) {
    const double user = sim::to_ms(
        core::measure_group_latency(core::Binding::kUserSpace, row.bytes));
    const double kernel = sim::to_ms(
        core::measure_group_latency(core::Binding::kKernelSpace, row.bytes));
    std::printf("%4zu K | user %5.2f krnl %5.2f | user %5.2f krnl %5.2f (gap %+0.2f)\n",
                row.bytes / 1024, row.paper_group_user, row.paper_group_kernel,
                user, kernel, user - kernel);
  }

  std::printf("\nShape checks: kernel RPC faster than user RPC at every size; "
              "kernel group faster than user group; 3K and 4K rows close "
              "(both three fragments).\n");
  return 0;
}
