// Reproduces Table 1 of the paper: communication latencies (ms) for the
// Panda system-layer primitives (unicast/multicast over FLIP), the RPC
// protocols, and the group protocols, at message sizes 0..4 KB.
//
// Paper values are from the 50 MHz SPARC / 10 Mbit/s Ethernet testbed; the
// simulation is calibrated to the same cost model, so values should land
// close and — more importantly — the *shape* must hold: kernel beats user
// space by ~0.3 ms on RPC and ~0.23 ms on group at every size, latency steps
// at fragment boundaries, 3 KB and 4 KB nearly tie.
//
// --json=FILE emits every measured cell as a lower-is-better metric; the
// committed BENCH_table1.json baseline is produced from this bench.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/testbed.h"

namespace {

struct Row {
  std::size_t bytes;
  double paper_unicast, paper_multicast;
  double paper_rpc_user, paper_rpc_kernel;
  double paper_group_user, paper_group_kernel;
};

// Table 1 of the paper, in milliseconds.
constexpr Row kPaper[] = {
    {0, 0.53, 0.62, 1.56, 1.27, 1.67, 1.44},
    {1024, 1.50, 1.58, 2.53, 2.23, 3.59, 3.38},
    {2048, 2.50, 2.55, 3.60, 3.40, 3.67, 3.44},
    {3072, 3.72, 3.74, 4.77, 4.48, 4.84, 4.56},
    {4096, 4.18, 4.23, 5.27, 5.06, 5.35, 5.25},
};

void print_header(const char* title) {
  std::printf("\n%s\n", title);
  std::printf("%-6s | %-17s | %-17s\n", "size", "paper (ms)", "measured (ms)");
}

std::string cell(const char* what, std::size_t bytes) {
  return std::string(what) + "." + std::to_string(bytes) + "B.ms";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args;
  if (!bench::parse_args(argc, argv, bench::kTrace, args)) return 2;

  // --trace=PATH: dump raw amoeba-trace/v1 event streams of the headline
  // 8-byte RPC runs, one per binding (PATH.user.trace / PATH.kernel.trace /
  // PATH.bypass.trace). These feed amoeba_prof, whose conservation gate runs
  // over them in CI.
  if (!args.trace_path.empty()) {
    const core::TracedRun user =
        core::traced_rpc_run(core::Binding::kUserSpace, 8);
    const core::TracedRun kernel =
        core::traced_rpc_run(core::Binding::kKernelSpace, 8);
    const core::TracedRun bypass =
        core::traced_rpc_run(core::Binding::kBypass, 8);
    const bool ok =
        bench::write_trace(user.events, args.trace_path + ".user.trace") &&
        bench::write_trace(kernel.events, args.trace_path + ".kernel.trace") &&
        bench::write_trace(bypass.events, args.trace_path + ".bypass.trace");
    return ok ? 0 : 1;
  }
  // --profile=FILE: causal profile of the user-space 8-byte RPC run.
  if (!args.profile_path.empty()) {
    const core::TracedRun run =
        core::traced_rpc_run(core::Binding::kUserSpace, 8);
    return bench::write_profile(run.events, "table1_latency:rpc_user_8B",
                                args.profile_path)
               ? 0
               : 1;
  }

  metrics::RunReport report("table1_latency");
  report.set_config("rounds", std::int64_t{10});
  report.set_config("seed", std::uint64_t{42});

  bench::print_banner(
      "Table 1 — Communication Latencies (paper vs. this simulation)");

  print_header("System layer: unicast / multicast (user space)");
  for (const Row& row : kPaper) {
    const double uni = sim::to_ms(core::measure_sys_unicast_latency(row.bytes));
    const double mc = sim::to_ms(core::measure_sys_multicast_latency(row.bytes));
    std::printf("%4zu K | uni %5.2f mc %5.2f | uni %5.2f mc %5.2f\n",
                row.bytes / 1024, row.paper_unicast, row.paper_multicast, uni,
                mc);
    report.add_metric(cell("sys_unicast", row.bytes), uni,
                      metrics::Better::kLower, "ms");
    report.add_metric(cell("sys_multicast", row.bytes), mc,
                      metrics::Better::kLower, "ms");
  }

  // The bypass column has no paper counterpart: it answers "what would the
  // same workload cost if the protocol lived in the NIC?" on the modern
  // preset (1 GB/s wire, sub-microsecond host costs), so it is microseconds
  // where the paper columns are milliseconds.
  print_header("RPC: user space vs kernel space vs kernel-bypass");
  for (const Row& row : kPaper) {
    const double user =
        sim::to_ms(core::measure_rpc_latency(core::Binding::kUserSpace, row.bytes));
    const double kernel = sim::to_ms(
        core::measure_rpc_latency(core::Binding::kKernelSpace, row.bytes));
    const double bypass = sim::to_ms(
        core::measure_rpc_latency(core::Binding::kBypass, row.bytes));
    std::printf("%4zu K | user %5.2f krnl %5.2f | user %5.2f krnl %5.2f "
                "(gap %+0.2f) byp %7.4f\n",
                row.bytes / 1024, row.paper_rpc_user, row.paper_rpc_kernel, user,
                kernel, user - kernel, bypass);
    report.add_metric(cell("rpc_user", row.bytes), user,
                      metrics::Better::kLower, "ms");
    report.add_metric(cell("rpc_kernel", row.bytes), kernel,
                      metrics::Better::kLower, "ms");
    report.add_metric(cell("rpc_bypass", row.bytes), bypass,
                      metrics::Better::kLower, "ms");
  }

  print_header("Group: user space vs kernel space vs kernel-bypass");
  for (const Row& row : kPaper) {
    const double user = sim::to_ms(
        core::measure_group_latency(core::Binding::kUserSpace, row.bytes));
    const double kernel = sim::to_ms(
        core::measure_group_latency(core::Binding::kKernelSpace, row.bytes));
    const double bypass = sim::to_ms(
        core::measure_group_latency(core::Binding::kBypass, row.bytes));
    std::printf("%4zu K | user %5.2f krnl %5.2f | user %5.2f krnl %5.2f "
                "(gap %+0.2f) byp %7.4f\n",
                row.bytes / 1024, row.paper_group_user, row.paper_group_kernel,
                user, kernel, user - kernel, bypass);
    report.add_metric(cell("group_user", row.bytes), user,
                      metrics::Better::kLower, "ms");
    report.add_metric(cell("group_kernel", row.bytes), kernel,
                      metrics::Better::kLower, "ms");
    report.add_metric(cell("group_bypass", row.bytes), bypass,
                      metrics::Better::kLower, "ms");
  }

  std::printf("\nShape checks: kernel RPC faster than user RPC at every size; "
              "kernel group faster than user group; 3K and 4K rows close "
              "(both three fragments).\n");

  if (!args.json_path.empty() && !bench::write_report(report, args.json_path)) {
    return 1;
  }
  return 0;
}
