// Reproduces the §4.3 analysis: the user-vs-kernel gap for a null group
// send, and the dedicated-sequencer effect.
//
// Paper accounting (per message): one 110 us thread switch + ~40 us of
// address-space crossings are essential; ~50 us of register-window traps
// and crossings come from kernel-only threads; +20 us fragmentation;
// -24 us smaller headers. A dedicated sequencer machine keeps the
// sequencer's context loaded, cutting the thread switch to ~60 us.
//
// With --json=FILE the report additionally carries the protocol counters
// and the group send-latency histograms of both runs.
#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "core/testbed.h"

namespace {

using amoeba::Thread;
using core::Binding;

struct GroupRun {
  sim::Time latency = 0;
  sim::Ledger ledger;
  metrics::MetricsRegistry registry;  // aggregated across nodes
  core::SeriesCapture series;         // windowed telemetry over the run
};

GroupRun run_null_sends(Binding binding, int count) {
  core::TestbedConfig cfg;
  cfg.binding = binding;
  cfg.nodes = 2;
  cfg.sequencer = 1;
  cfg.metrics = true;
  cfg.series_window = sim::usec(500);
  core::Testbed bed(cfg);
  for (core::NodeId n = 0; n < 2; ++n) {
    bed.panda(n).set_group_handler(
        [](Thread&, core::NodeId, std::uint32_t, net::Payload) -> sim::Co<void> {
          co_return;
        });
  }
  bed.start();
  GroupRun result;
  sim::Ledger before;
  sim::Time elapsed = 0;
  Thread& sender = bed.world().kernel(0).create_thread("sender");
  sim::spawn([](core::Testbed& b, Thread& self, int n, sim::Ledger& snap,
                sim::Time& total) -> sim::Co<void> {
    co_await b.panda(0).group_send(self, net::Payload());  // warm-up
    snap = b.world().aggregate_ledger();
    const sim::Time t0 = b.sim().now();
    for (int i = 0; i < n; ++i) {
      co_await b.panda(0).group_send(self, net::Payload());
    }
    total = b.sim().now() - t0;
  }(bed, sender, count, before, elapsed));
  bed.sim().run();
  bed.world().snapshot_net_metrics();
  result.latency = elapsed / count;
  result.ledger = bed.world().aggregate_ledger().diff(before);
  result.registry = bed.metrics()->aggregate();
  bed.series()->finish(bed.sim().now());
  result.series.window = bed.series()->window();
  result.series.columns = bed.series()->columns();
  return result;
}

/// Serialize a run's windowed telemetry into the report's `series` section.
void add_series(metrics::RunReport& report, const std::string& name,
                const core::SeriesCapture& s) {
  std::vector<std::pair<std::string, std::vector<double>>> columns;
  for (const auto& c : s.columns) columns.emplace_back(c.name, c.values);
  report.add_series(name, s.window, std::move(columns));
}

/// Thread-switch cost at the sequencer with/without an application thread
/// competing there (the dedicated-sequencer effect on the 110/60 us path).
sim::Time sequencer_switch_cost(bool dedicated) {
  core::TestbedConfig cfg;
  cfg.binding = Binding::kUserSpace;
  cfg.nodes = 2;
  cfg.sequencer = 1;
  core::Testbed bed(cfg);
  bed.panda(0).set_group_handler(
      [](Thread&, core::NodeId, std::uint32_t, net::Payload) -> sim::Co<void> {
        co_return;
      });
  if (!dedicated) {
    // A delivery consumer on the sequencer node (so the sequencer thread's
    // context is not loaded when the next request arrives).
    bed.panda(1).set_group_handler(
        [](Thread&, core::NodeId, std::uint32_t, net::Payload) -> sim::Co<void> {
          co_return;
        });
  }
  bed.start();
  Thread& sender = bed.world().kernel(0).create_thread("sender");
  sim::spawn([](core::Testbed& b, Thread& self) -> sim::Co<void> {
    for (int i = 0; i < 21; ++i) {
      co_await b.panda(0).group_send(self, net::Payload());
    }
  }(bed, sender));
  bed.sim().run();
  const auto& e = bed.world().kernel(1).ledger().get(sim::Mechanism::kThreadSwitch);
  return e.count > 0 ? e.total / static_cast<sim::Time>(e.count) : 0;
}

/// --trace=FILE: traced 4-node group broadcast workload, dumped as Chrome
/// trace-event JSON (chrome://tracing / ui.perfetto.dev).
int run_traced(const std::string& path) {
  core::TestbedConfig cfg;
  cfg.binding = Binding::kUserSpace;
  cfg.nodes = 4;
  cfg.sequencer = 0;
  cfg.trace = true;
  core::Testbed bed(cfg);
  for (core::NodeId n = 0; n < 4; ++n) {
    bed.panda(n).set_group_handler(
        [](Thread&, core::NodeId, std::uint32_t, net::Payload) -> sim::Co<void> {
          co_return;
        });
  }
  bed.start();
  for (core::NodeId n = 0; n < 4; ++n) {
    Thread& sender = bed.world().kernel(n).create_thread("sender");
    sim::spawn([](core::Testbed& b, Thread& self, core::NodeId src)
                   -> sim::Co<void> {
      for (int i = 0; i < 3; ++i) {
        co_await b.panda(src).group_send(self, net::Payload::zeros(512));
      }
    }(bed, sender, n));
  }
  bed.sim().run();
  return bench::write_trace(bed.tracer()->events(), path) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args;
  if (!bench::parse_args(argc, argv, bench::kTrace, args)) return 2;
  if (!args.trace_path.empty()) return run_traced(args.trace_path);
  // --profile=FILE: the §4.3 accounting computed automatically — causal
  // profile of the user-space 8-byte group send run.
  if (!args.profile_path.empty()) {
    const core::TracedRun run =
        core::traced_group_run(Binding::kUserSpace, 8, 50);
    return bench::write_profile(run.events, "breakdown_group:group_user_8B",
                                args.profile_path)
               ? 0
               : 1;
  }

  constexpr int kRounds = 50;
  const GroupRun user = run_null_sends(Binding::kUserSpace, kRounds);
  const GroupRun kernel = run_null_sends(Binding::kKernelSpace, kRounds);

  bench::print_banner(
      "§4.3 breakdown — user-space vs kernel-space null group send");
  std::printf("\nlatency: user %.2f ms, kernel %.2f ms, gap %.0f us "
              "(paper: 1.67 vs 1.44, gap ~230 us)\n\n",
              sim::to_ms(user.latency), sim::to_ms(kernel.latency),
              sim::to_us(user.latency - kernel.latency));

  metrics::RunReport report("breakdown_group");
  report.set_config("rounds", std::int64_t{kRounds});
  report.set_config("nodes", std::int64_t{2});
  report.set_config("seed", std::uint64_t{42});
  report.add_metric("group_user.latency_ms", sim::to_ms(user.latency),
                    metrics::Better::kLower, "ms");
  report.add_metric("group_kernel.latency_ms", sim::to_ms(kernel.latency),
                    metrics::Better::kLower, "ms");
  bench::print_ledger_delta("mechanism (per send)", user.ledger, kernel.ledger,
                            kRounds, &report);
  report.add_registry(user.registry, "user.");
  report.add_registry(kernel.registry, "kernel.");
  add_series(report, "user", user.series);
  add_series(report, "kernel", kernel.series);

  const sim::Time loaded = sequencer_switch_cost(/*dedicated=*/true);
  const sim::Time unloaded = sequencer_switch_cost(/*dedicated=*/false);
  std::printf("\nSequencer thread dispatch (the §4.3 110/60 us effect):\n");
  std::printf("  shared sequencer machine:    %.0f us/dispatch (paper ~110)\n",
              sim::to_us(unloaded));
  std::printf("  dedicated sequencer machine: %.0f us/dispatch (paper ~60)\n",
              sim::to_us(loaded));
  report.add_metric("sequencer_dispatch.shared_us", sim::to_us(unloaded),
                    metrics::Better::kLower, "us");
  report.add_metric("sequencer_dispatch.dedicated_us", sim::to_us(loaded),
                    metrics::Better::kLower, "us");

  // The same accounting, as share-of-total tables.
  std::printf("\n");
  user.ledger.print_breakdown(stdout, "user-space ledger (per send)", kRounds);
  std::printf("\n");
  kernel.ledger.print_breakdown(stdout, "kernel-space ledger (per send)",
                                kRounds);

  if (!args.json_path.empty() && !bench::write_report(report, args.json_path)) {
    return 1;
  }
  return 0;
}
