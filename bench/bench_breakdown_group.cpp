// Reproduces the §4.3 analysis: the user-vs-kernel gap for a null group
// send, and the dedicated-sequencer effect.
//
// Paper accounting (per message): one 110 us thread switch + ~40 us of
// address-space crossings are essential; ~50 us of register-window traps
// and crossings come from kernel-only threads; +20 us fragmentation;
// -24 us smaller headers. A dedicated sequencer machine keeps the
// sequencer's context loaded, cutting the thread switch to ~60 us.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/testbed.h"
#include "trace/chrome_export.h"

namespace {

using amoeba::Thread;
using core::Binding;

struct GroupRun {
  sim::Time latency = 0;
  sim::Ledger ledger;
};

GroupRun run_null_sends(Binding binding, int count) {
  core::TestbedConfig cfg;
  cfg.binding = binding;
  cfg.nodes = 2;
  cfg.sequencer = 1;
  core::Testbed bed(cfg);
  for (core::NodeId n = 0; n < 2; ++n) {
    bed.panda(n).set_group_handler(
        [](Thread&, core::NodeId, std::uint32_t, net::Payload) -> sim::Co<void> {
          co_return;
        });
  }
  bed.start();
  GroupRun result;
  sim::Ledger before;
  sim::Time elapsed = 0;
  Thread& sender = bed.world().kernel(0).create_thread("sender");
  sim::spawn([](core::Testbed& b, Thread& self, int n, sim::Ledger& snap,
                sim::Time& total) -> sim::Co<void> {
    co_await b.panda(0).group_send(self, net::Payload());  // warm-up
    snap = b.world().aggregate_ledger();
    const sim::Time t0 = b.sim().now();
    for (int i = 0; i < n; ++i) {
      co_await b.panda(0).group_send(self, net::Payload());
    }
    total = b.sim().now() - t0;
  }(bed, sender, count, before, elapsed));
  bed.sim().run();
  result.latency = elapsed / count;
  result.ledger = bed.world().aggregate_ledger().diff(before);
  return result;
}

/// Thread-switch cost at the sequencer with/without an application thread
/// competing there (the dedicated-sequencer effect on the 110/60 us path).
sim::Time sequencer_switch_cost(bool dedicated) {
  core::TestbedConfig cfg;
  cfg.binding = Binding::kUserSpace;
  cfg.nodes = 2;
  cfg.sequencer = 1;
  core::Testbed bed(cfg);
  bed.panda(0).set_group_handler(
      [](Thread&, core::NodeId, std::uint32_t, net::Payload) -> sim::Co<void> {
        co_return;
      });
  if (!dedicated) {
    // A delivery consumer on the sequencer node (so the sequencer thread's
    // context is not loaded when the next request arrives).
    bed.panda(1).set_group_handler(
        [](Thread&, core::NodeId, std::uint32_t, net::Payload) -> sim::Co<void> {
          co_return;
        });
  }
  bed.start();
  Thread& sender = bed.world().kernel(0).create_thread("sender");
  sim::spawn([](core::Testbed& b, Thread& self) -> sim::Co<void> {
    for (int i = 0; i < 21; ++i) {
      co_await b.panda(0).group_send(self, net::Payload());
    }
  }(bed, sender));
  bed.sim().run();
  const auto& e = bed.world().kernel(1).ledger().get(sim::Mechanism::kThreadSwitch);
  return e.count > 0 ? e.total / static_cast<sim::Time>(e.count) : 0;
}

/// --trace=FILE: traced 4-node group broadcast workload, dumped as Chrome
/// trace-event JSON (chrome://tracing / ui.perfetto.dev).
int run_traced(const std::string& path) {
  core::TestbedConfig cfg;
  cfg.binding = Binding::kUserSpace;
  cfg.nodes = 4;
  cfg.sequencer = 0;
  cfg.trace = true;
  core::Testbed bed(cfg);
  for (core::NodeId n = 0; n < 4; ++n) {
    bed.panda(n).set_group_handler(
        [](Thread&, core::NodeId, std::uint32_t, net::Payload) -> sim::Co<void> {
          co_return;
        });
  }
  bed.start();
  for (core::NodeId n = 0; n < 4; ++n) {
    Thread& sender = bed.world().kernel(n).create_thread("sender");
    sim::spawn([](core::Testbed& b, Thread& self, core::NodeId src)
                   -> sim::Co<void> {
      for (int i = 0; i < 3; ++i) {
        co_await b.panda(src).group_send(self, net::Payload::zeros(512));
      }
    }(bed, sender, n));
  }
  bed.sim().run();
  if (!trace::write_chrome_trace_file(bed.tracer()->events(), path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %zu trace events to %s (chrome://tracing)\n",
              bed.tracer()->events().size(), path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      return run_traced(argv[i] + 8);
    }
  }
  constexpr int kRounds = 50;
  const GroupRun user = run_null_sends(Binding::kUserSpace, kRounds);
  const GroupRun kernel = run_null_sends(Binding::kKernelSpace, kRounds);

  std::printf("==============================================================\n");
  std::printf("§4.3 breakdown — user-space vs kernel-space null group send\n");
  std::printf("==============================================================\n\n");
  std::printf("latency: user %.2f ms, kernel %.2f ms, gap %.0f us "
              "(paper: 1.67 vs 1.44, gap ~230 us)\n\n",
              sim::to_ms(user.latency), sim::to_ms(kernel.latency),
              sim::to_us(user.latency - kernel.latency));

  std::printf("%-22s | %-18s | %-18s | %s\n", "mechanism (per send)",
              "user count/us", "kernel count/us", "delta us");
  for (std::size_t i = 0; i < static_cast<std::size_t>(sim::Mechanism::kCount);
       ++i) {
    const auto m = static_cast<sim::Mechanism>(i);
    const auto& u = user.ledger.get(m);
    const auto& k = kernel.ledger.get(m);
    if (u.count == 0 && k.count == 0) continue;
    const double du = sim::to_us(u.total) / kRounds;
    const double dk = sim::to_us(k.total) / kRounds;
    std::printf("%-22s | %5.1f x %7.1f | %5.1f x %7.1f | %+8.1f\n",
                std::string(sim::mechanism_name(m)).c_str(),
                static_cast<double>(u.count) / kRounds, du,
                static_cast<double>(k.count) / kRounds, dk, du - dk);
  }

  const sim::Time loaded = sequencer_switch_cost(/*dedicated=*/true);
  const sim::Time unloaded = sequencer_switch_cost(/*dedicated=*/false);
  std::printf("\nSequencer thread dispatch (the §4.3 110/60 us effect):\n");
  std::printf("  shared sequencer machine:    %.0f us/dispatch (paper ~110)\n",
              sim::to_us(unloaded));
  std::printf("  dedicated sequencer machine: %.0f us/dispatch (paper ~60)\n",
              sim::to_us(loaded));
  return 0;
}
