// Reproduces Table 3 of the paper: execution times (seconds) of six parallel
// Orca applications on 1/8/16/32 processors, on the kernel-space and
// user-space protocol stacks (plus the dedicated-sequencer variant for the
// Linear Equation Solver).
//
// Absolute single-processor times are calibrated (the per-unit work
// constants in the app parameter structs); what the simulation must
// *reproduce* is the shape: which binding wins where, roughly by how much,
// and the saturation/overload effects the paper explains in §5.
//
// Every (app, impl, processors) cell is an independent single-threaded
// simulation, so the cells fan out over the sweep work-stealing pool and the
// tables render afterwards from the gathered slots — output bytes are
// identical for any worker count. (For the full matrix treatment with seeds
// and statistics, see amoeba_sweep.)
//
// Usage: bench_table3_applications [--app=tsp|asp|ab|rl|sor|leq] [--quick]
//                                  [--threads=N] [--json=FILE]
//   --quick runs only {1,8} processors (for CI smoke runs).
//   --threads=N pool width (0 = all host cores).
#include <cctype>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "apps/ab.h"
#include "apps/asp.h"
#include "apps/leq.h"
#include "apps/rl.h"
#include "apps/sor.h"
#include "apps/tsp.h"
#include "bench/harness.h"
#include "core/testbed.h"
#include "sweep/pool.h"

namespace {

using apps::RunConfig;
using panda::Binding;

struct PaperRow {
  const char* impl;
  double t1, t8, t16, t32;
};

void print_paper(const char* app, const std::vector<PaperRow>& rows) {
  std::printf("\n--- %s ---\n", app);
  std::printf("%-24s | %8s %8s %8s %8s\n", "paper [sec]", "1", "8", "16", "32");
  for (const auto& r : rows) {
    std::printf("%-24s | %8.0f %8.0f %8.0f %8.0f\n", r.impl, r.t1, r.t8, r.t16,
                r.t32);
  }
}

/// Metric key: "<app>.<impl>.p<procs>.sec" with the impl lowercased and
/// dash-joined ("User-space-dedicated" -> "user-space-dedicated").
std::string metric_key(const char* app, const char* impl, std::size_t procs) {
  std::string key = std::string(app) + ".";
  for (const char* p = impl; *p != '\0'; ++p) {
    key += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  key += ".p" + std::to_string(procs) + ".sec";
  return key;
}

/// One (app, impl, processors) simulation: scheduled on the pool, rendered
/// after the join.
struct Cell {
  const char* app;
  const char* impl;
  std::size_t procs;
  bool dedicated;
  std::function<double(const RunConfig&)> run_one;
  bool skipped = false;  // dedicated sequencer needs a second machine
  double sec = 0.0;
};

/// Queue every cell of one table row; results land in `cells` slots.
void plan(const char* app, const char* impl,
          const std::vector<std::size_t>& procs, bool dedicated,
          std::function<double(const RunConfig&)> run_one,
          std::vector<Cell>& cells) {
  for (const std::size_t p : procs) {
    Cell c;
    c.app = app;
    c.impl = impl;
    c.procs = p;
    c.dedicated = dedicated;
    c.run_one = std::move(run_one);
    c.skipped = dedicated && p == 1;
    cells.push_back(c);
    run_one = cells.back().run_one;  // reuse for the next processor count
  }
}

/// Print one measured row from the gathered cells and record its metrics.
void render(const char* app, const char* impl, const std::vector<Cell>& cells,
            metrics::RunReport& report) {
  std::printf("%-24s |", impl);
  double t1 = 0.0;
  for (const Cell& c : cells) {
    if (std::strcmp(c.app, app) != 0 || std::strcmp(c.impl, impl) != 0) {
      continue;
    }
    if (c.skipped) {
      std::printf(" %8s", "-");
      continue;
    }
    if (c.procs == 1) t1 = c.sec;
    std::printf(" %8.0f", c.sec);
    report.add_metric(metric_key(app, impl, c.procs), c.sec,
                      metrics::Better::kLower, "sec");
  }
  if (t1 > 0.0) std::printf("   (T1=%.0f)", t1);
  std::printf("\n");
}

bool want(const std::string& filter, const char* app) {
  return filter.empty() || filter == app;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args;
  if (!bench::parse_args(argc, argv,
                         bench::kApp | bench::kQuick | bench::kThreads, args)) {
    return 2;
  }
  // --profile=FILE: causal profile of the communication primitive the Orca
  // runtime leans on (user-space RPC).
  if (!args.profile_path.empty()) {
    const core::TracedRun run =
        core::traced_rpc_run(core::Binding::kUserSpace, 8);
    return bench::write_profile(run.events, "table3_applications:rpc_user_8B",
                                args.profile_path)
               ? 0
               : 1;
  }
  const std::string& filter = args.app;
  const std::vector<std::size_t> procs =
      args.quick ? std::vector<std::size_t>{1, 8}
                 : std::vector<std::size_t>{1, 8, 16, 32};

  metrics::RunReport report("table3_applications");
  report.set_config("quick", args.quick);
  if (!filter.empty()) report.set_config("app", filter);
  report.set_config("seed", std::uint64_t{42});

  bench::print_banner(
      "Table 3 — Orca application execution times (paper vs. simulation)");

  std::vector<Cell> cells;
  if (want(filter, "tsp")) {
    for (const char* impl : {"Kernel-space", "User-space"}) {
      plan("tsp", impl, procs, false, [](const RunConfig& rc) {
        apps::TspParams p;
        p.run = rc;
        return sim::to_sec(apps::run_tsp(p).elapsed);
      }, cells);
    }
  }
  if (want(filter, "asp")) {
    for (const char* impl : {"Kernel-space", "User-space"}) {
      plan("asp", impl, procs, false, [](const RunConfig& rc) {
        apps::AspParams p;
        p.run = rc;
        return sim::to_sec(apps::run_asp(p).elapsed);
      }, cells);
    }
  }
  if (want(filter, "ab")) {
    for (const char* impl : {"Kernel-space", "User-space"}) {
      plan("ab", impl, procs, false, [](const RunConfig& rc) {
        apps::AbParams p;
        p.run = rc;
        return sim::to_sec(apps::run_ab(p).elapsed);
      }, cells);
    }
  }
  if (want(filter, "rl")) {
    for (const char* impl : {"Kernel-space", "User-space"}) {
      plan("rl", impl, procs, false, [](const RunConfig& rc) {
        apps::RlParams p;
        p.run = rc;
        return sim::to_sec(apps::run_rl(p).elapsed);
      }, cells);
    }
  }
  if (want(filter, "sor")) {
    for (const char* impl : {"Kernel-space", "User-space"}) {
      plan("sor", impl, procs, false, [](const RunConfig& rc) {
        apps::SorParams p;
        p.run = rc;
        return sim::to_sec(apps::run_sor(p).elapsed);
      }, cells);
    }
  }
  if (want(filter, "leq")) {
    for (const char* impl :
         {"Kernel-space", "User-space", "User-space-dedicated"}) {
      const bool dedicated = std::strstr(impl, "dedicated") != nullptr;
      plan("leq", impl, procs, dedicated, [](const RunConfig& rc) {
        apps::LeqParams p;
        p.run = rc;
        return sim::to_sec(apps::run_leq(p).elapsed);
      }, cells);
    }
  }

  std::vector<std::function<void()>> tasks;
  tasks.reserve(cells.size());
  for (Cell& c : cells) {
    if (c.skipped) continue;
    tasks.push_back([&c] {
      RunConfig rc;
      rc.processors = c.procs;
      rc.dedicated_sequencer = c.dedicated;
      rc.binding = std::strstr(c.impl, "Kernel") != nullptr
                       ? Binding::kKernelSpace
                       : Binding::kUserSpace;
      c.sec = c.run_one(rc);
    });
  }
  sweep::PoolOptions pool;
  pool.threads = args.threads;
  sweep::run_tasks(std::move(tasks), pool);

  if (want(filter, "tsp")) {
    print_paper("Travelling Salesman Problem",
                {{"Kernel-space", 790, 87, 44, 23}, {"User-space", 783, 92, 46, 24}});
    std::printf("%-24s | %8s %8s %8s %8s\n", "measured [sec]", "1", "8", "16", "32");
    for (const char* impl : {"Kernel-space", "User-space"}) {
      render("tsp", impl, cells, report);
    }
  }
  if (want(filter, "asp")) {
    print_paper("All-pairs Shortest Paths",
                {{"Kernel-space", 213, 30, 17, 11}, {"User-space", 216, 31, 18, 11}});
    std::printf("%-24s | %8s %8s %8s %8s\n", "measured [sec]", "1", "8", "16", "32");
    for (const char* impl : {"Kernel-space", "User-space"}) {
      render("asp", impl, cells, report);
    }
  }
  if (want(filter, "ab")) {
    print_paper("Alpha-Beta Search",
                {{"Kernel-space", 565, 106, 78, 60}, {"User-space", 567, 106, 78, 59}});
    std::printf("%-24s | %8s %8s %8s %8s\n", "measured [sec]", "1", "8", "16", "32");
    for (const char* impl : {"Kernel-space", "User-space"}) {
      render("ab", impl, cells, report);
    }
  }
  if (want(filter, "rl")) {
    print_paper("Region Labeling",
                {{"Kernel-space", 759, 132, 115, 114}, {"User-space", 767, 133, 119, 108}});
    std::printf("%-24s | %8s %8s %8s %8s\n", "measured [sec]", "1", "8", "16", "32");
    for (const char* impl : {"Kernel-space", "User-space"}) {
      render("rl", impl, cells, report);
    }
  }
  if (want(filter, "sor")) {
    print_paper("Successive Overrelaxation",
                {{"Kernel-space", 118, 20, 14, 13}, {"User-space", 118, 19, 13, 11}});
    std::printf("%-24s | %8s %8s %8s %8s\n", "measured [sec]", "1", "8", "16", "32");
    for (const char* impl : {"Kernel-space", "User-space"}) {
      render("sor", impl, cells, report);
    }
  }
  if (want(filter, "leq")) {
    print_paper("Linear Equation Solver",
                {{"Kernel-space", 521, 102, 91, 127},
                 {"User-space", 527, 113, 112, 164},
                 {"User-space-dedicated", 527, 116, 94, 128}});
    std::printf("%-24s | %8s %8s %8s %8s\n", "measured [sec]", "1", "8", "16", "32");
    for (const char* impl :
         {"Kernel-space", "User-space", "User-space-dedicated"}) {
      render("leq", impl, cells, report);
    }
  }

  std::printf("\nShape checklist (§5): coarse-grained apps (TSP, ASP, AB) show no\n"
              "significant protocol difference; RL/SOR favour user space at high\n"
              "processor counts (guarded-operation continuations); LEQ favours\n"
              "kernel space (sequencer overload) and degrades from 16 to 32\n"
              "processors on every implementation.\n");

  if (!args.json_path.empty() && !bench::write_report(report, args.json_path)) {
    return 1;
  }
  return 0;
}
