// Reproduces Table 3 of the paper: execution times (seconds) of six parallel
// Orca applications on 1/8/16/32 processors, on the kernel-space and
// user-space protocol stacks (plus the dedicated-sequencer variant for the
// Linear Equation Solver).
//
// Absolute single-processor times are calibrated (the per-unit work
// constants in the app parameter structs); what the simulation must
// *reproduce* is the shape: which binding wins where, roughly by how much,
// and the saturation/overload effects the paper explains in §5.
//
// Usage: bench_table3_applications [--app=tsp|asp|ab|rl|sor|leq] [--quick]
//                                  [--json=FILE]
//   --quick runs only {1,8} processors (for CI smoke runs).
#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/ab.h"
#include "apps/asp.h"
#include "apps/leq.h"
#include "apps/rl.h"
#include "apps/sor.h"
#include "apps/tsp.h"
#include "bench/harness.h"

namespace {

using apps::RunConfig;
using panda::Binding;

struct PaperRow {
  const char* impl;
  double t1, t8, t16, t32;
};

void print_paper(const char* app, const std::vector<PaperRow>& rows) {
  std::printf("\n--- %s ---\n", app);
  std::printf("%-24s | %8s %8s %8s %8s\n", "paper [sec]", "1", "8", "16", "32");
  for (const auto& r : rows) {
    std::printf("%-24s | %8.0f %8.0f %8.0f %8.0f\n", r.impl, r.t1, r.t8, r.t16,
                r.t32);
  }
}

/// Metric key: "<app>.<impl>.p<procs>.sec" with the impl lowercased and
/// dash-joined ("User-space-dedicated" -> "user-space-dedicated").
std::string metric_key(const char* app, const char* impl, std::size_t procs) {
  std::string key = std::string(app) + ".";
  for (const char* p = impl; *p != '\0'; ++p) {
    key += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  key += ".p" + std::to_string(procs) + ".sec";
  return key;
}

template <typename Runner>
void measure(const char* app, const char* impl,
             const std::vector<std::size_t>& procs, bool dedicated,
             metrics::RunReport& report, Runner&& run_one) {
  std::printf("%-24s |", impl);
  std::fflush(stdout);
  double t1 = 0.0;
  for (const std::size_t p : procs) {
    RunConfig rc;
    rc.processors = p;
    rc.dedicated_sequencer = dedicated;
    rc.binding = std::strstr(impl, "Kernel") != nullptr ? Binding::kKernelSpace
                                                        : Binding::kUserSpace;
    if (dedicated && p == 1) {
      std::printf(" %8s", "-");
      std::fflush(stdout);
      continue;
    }
    const double t = run_one(rc);
    if (p == 1) t1 = t;
    std::printf(" %8.0f", t);
    std::fflush(stdout);
    report.add_metric(metric_key(app, impl, p), t, metrics::Better::kLower,
                      "sec");
  }
  if (t1 > 0.0) std::printf("   (T1=%.0f)", t1);
  std::printf("\n");
}

bool want(const std::string& filter, const char* app) {
  return filter.empty() || filter == app;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args;
  if (!bench::parse_args(argc, argv, bench::kApp | bench::kQuick, args)) {
    return 2;
  }
  const std::string& filter = args.app;
  const std::vector<std::size_t> procs =
      args.quick ? std::vector<std::size_t>{1, 8}
                 : std::vector<std::size_t>{1, 8, 16, 32};

  metrics::RunReport report("table3_applications");
  report.set_config("quick", args.quick);
  if (!filter.empty()) report.set_config("app", filter);
  report.set_config("seed", std::uint64_t{42});

  bench::print_banner(
      "Table 3 — Orca application execution times (paper vs. simulation)");

  if (want(filter, "tsp")) {
    print_paper("Travelling Salesman Problem",
                {{"Kernel-space", 790, 87, 44, 23}, {"User-space", 783, 92, 46, 24}});
    std::printf("%-24s | %8s %8s %8s %8s\n", "measured [sec]", "1", "8", "16", "32");
    for (const char* impl : {"Kernel-space", "User-space"}) {
      measure("tsp", impl, procs, false, report, [](const RunConfig& rc) {
        apps::TspParams p;
        p.run = rc;
        return sim::to_sec(apps::run_tsp(p).elapsed);
      });
    }
  }

  if (want(filter, "asp")) {
    print_paper("All-pairs Shortest Paths",
                {{"Kernel-space", 213, 30, 17, 11}, {"User-space", 216, 31, 18, 11}});
    std::printf("%-24s | %8s %8s %8s %8s\n", "measured [sec]", "1", "8", "16", "32");
    for (const char* impl : {"Kernel-space", "User-space"}) {
      measure("asp", impl, procs, false, report, [](const RunConfig& rc) {
        apps::AspParams p;
        p.run = rc;
        return sim::to_sec(apps::run_asp(p).elapsed);
      });
    }
  }

  if (want(filter, "ab")) {
    print_paper("Alpha-Beta Search",
                {{"Kernel-space", 565, 106, 78, 60}, {"User-space", 567, 106, 78, 59}});
    std::printf("%-24s | %8s %8s %8s %8s\n", "measured [sec]", "1", "8", "16", "32");
    for (const char* impl : {"Kernel-space", "User-space"}) {
      measure("ab", impl, procs, false, report, [](const RunConfig& rc) {
        apps::AbParams p;
        p.run = rc;
        return sim::to_sec(apps::run_ab(p).elapsed);
      });
    }
  }

  if (want(filter, "rl")) {
    print_paper("Region Labeling",
                {{"Kernel-space", 759, 132, 115, 114}, {"User-space", 767, 133, 119, 108}});
    std::printf("%-24s | %8s %8s %8s %8s\n", "measured [sec]", "1", "8", "16", "32");
    for (const char* impl : {"Kernel-space", "User-space"}) {
      measure("rl", impl, procs, false, report, [](const RunConfig& rc) {
        apps::RlParams p;
        p.run = rc;
        return sim::to_sec(apps::run_rl(p).elapsed);
      });
    }
  }

  if (want(filter, "sor")) {
    print_paper("Successive Overrelaxation",
                {{"Kernel-space", 118, 20, 14, 13}, {"User-space", 118, 19, 13, 11}});
    std::printf("%-24s | %8s %8s %8s %8s\n", "measured [sec]", "1", "8", "16", "32");
    for (const char* impl : {"Kernel-space", "User-space"}) {
      measure("sor", impl, procs, false, report, [](const RunConfig& rc) {
        apps::SorParams p;
        p.run = rc;
        return sim::to_sec(apps::run_sor(p).elapsed);
      });
    }
  }

  if (want(filter, "leq")) {
    print_paper("Linear Equation Solver",
                {{"Kernel-space", 521, 102, 91, 127},
                 {"User-space", 527, 113, 112, 164},
                 {"User-space-dedicated", 527, 116, 94, 128}});
    std::printf("%-24s | %8s %8s %8s %8s\n", "measured [sec]", "1", "8", "16", "32");
    for (const char* impl :
         {"Kernel-space", "User-space", "User-space-dedicated"}) {
      const bool dedicated = std::strstr(impl, "dedicated") != nullptr;
      measure("leq", impl, procs, dedicated, report, [](const RunConfig& rc) {
        apps::LeqParams p;
        p.run = rc;
        return sim::to_sec(apps::run_leq(p).elapsed);
      });
    }
  }

  std::printf("\nShape checklist (§5): coarse-grained apps (TSP, ASP, AB) show no\n"
              "significant protocol difference; RL/SOR favour user space at high\n"
              "processor counts (guarded-operation continuations); LEQ favours\n"
              "kernel space (sequencer overload) and degrades from 16 to 32\n"
              "processors on every implementation.\n");

  if (!args.json_path.empty() && !bench::write_report(report, args.json_path)) {
    return 1;
  }
  return 0;
}
