// Causal span profiler CLI: critical-path latency attribution from a raw
// `amoeba-trace/v1` dump (bench --trace=FILE with a non-.json extension).
//
// usage: amoeba_prof --trace=FILE [--json=FILE] [--folded=FILE]
//                    [--check-conservation] [--vs=FILE] [--check-gap]
//
//   --trace=FILE          the trace to profile (required)
//   --json=FILE           write the amoeba-profile/v1 JSON
//   --folded=FILE         write folded flamegraph stacks (flamegraph.pl)
//   --check-conservation  exit 1 unless per-mechanism on+off-path time and
//                         counts match the trace ledger *exactly*
//   --vs=FILE             second trace (e.g. the kernel binding): print the
//                         per-mechanism delta table, §4.2/§4.3 style
//   --check-gap           with --vs: exit 1 unless the paper's headline
//                         holds on the section-4.2 categories — switching
//                         (switches + signals + the traps/crossings they
//                         force) is the largest per-operation regression of
//                         --trace over --vs and the user-level fragmentation
//                         layer ranks in the top three
//
// Everything printed or written is a byte-deterministic function of the
// input traces.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "trace/profile.h"
#include "trace/trace_io.h"

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s --trace=FILE [--json=FILE] [--folded=FILE] "
               "[--check-conservation] [--vs=FILE] [--check-gap]\n",
               prog);
  return 2;
}

bool load_trace(const char* prog, const std::string& path,
                std::vector<trace::Event>& events) {
  std::string error;
  if (!trace::read_trace_text_file(path, events, &error)) {
    std::fprintf(stderr, "%s: %s: %s\n", prog, path.c_str(), error.c_str());
    return false;
  }
  return true;
}

bool write_text(const char* prog, const std::string& path,
                const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "%s: cannot write %s\n", prog, path.c_str());
    return false;
  }
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::fprintf(stderr, "%s: cannot write %s\n", prog, path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string json_path;
  std::string folded_path;
  std::string vs_path;
  bool check_conservation = false;
  bool check_gap = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eat = [&arg](const char* prefix, std::string& dst) {
      const std::size_t n = std::strlen(prefix);
      if (arg.rfind(prefix, 0) != 0) return false;
      dst = arg.substr(n);
      return true;
    };
    if (eat("--trace=", trace_path) || eat("--json=", json_path) ||
        eat("--folded=", folded_path) || eat("--vs=", vs_path)) {
      continue;
    }
    if (arg == "--check-conservation") {
      check_conservation = true;
    } else if (arg == "--check-gap") {
      check_gap = true;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                   arg.c_str());
      return usage(argv[0]);
    }
  }
  if (trace_path.empty()) return usage(argv[0]);
  if (check_gap && vs_path.empty()) {
    std::fprintf(stderr, "%s: --check-gap needs --vs=FILE\n", argv[0]);
    return usage(argv[0]);
  }

  std::vector<trace::Event> events;
  if (!load_trace(argv[0], trace_path, events)) return 2;
  const trace::Profile profile = trace::profile_trace(events);

  std::printf("trace %s: %zu events, %zu ops (%zu complete)\n",
              trace_path.c_str(), profile.events, profile.ops_total,
              profile.ops_complete);
  trace::print_profile(profile, stdout);

  std::string why;
  const bool conserved = trace::conservation_ok(profile, &why);
  if (conserved) {
    std::printf("\nconservation: exact (on-path + off-path == ledger for "
                "every mechanism)\n");
  } else {
    std::printf("\nconservation: FAILED — %s\n", why.c_str());
  }

  if (!json_path.empty()) {
    if (!write_text(argv[0], json_path,
                    trace::profile_json(profile, trace_path))) {
      return 2;
    }
    std::printf("wrote profile JSON to %s\n", json_path.c_str());
  }
  if (!folded_path.empty()) {
    if (!write_text(argv[0], folded_path, trace::folded_stacks(profile))) {
      return 2;
    }
    std::printf("wrote folded flamegraph stacks to %s\n", folded_path.c_str());
  }

  int rc = 0;
  if (check_conservation && !conserved) rc = 1;

  if (!vs_path.empty()) {
    std::vector<trace::Event> vs_events;
    if (!load_trace(argv[0], vs_path, vs_events)) return 2;
    const trace::Profile vs_profile = trace::profile_trace(vs_events);
    std::printf("\n");
    trace::print_profile_vs(profile, trace_path.c_str(), vs_profile,
                            vs_path.c_str(), stdout);
    if (check_gap) {
      std::string gap_why;
      if (trace::check_headline_gap(profile, vs_profile, &gap_why)) {
        std::printf("\nheadline gap: ok (switching category dominates, "
                    "fragmentation in the top three)\n");
      } else {
        std::printf("\nheadline gap: FAILED — %s\n", gap_why.c_str());
        rc = 1;
      }
    }
  }
  return rc;
}
