// Domain example: the paper's Travelling Salesman application end to end —
// replicated branch-and-bound over a 15-city instance (2184 jobs, as in §5),
// run on 1 and 8 processors on both protocol stacks.
//
//   $ ./build/examples/parallel_tsp [--json=FILE]
#include <cstdio>
#include <string>

#include "apps/tsp.h"
#include "bench/harness.h"

int main(int argc, char** argv) {
  bench::Args args;
  if (!bench::parse_args(argc, argv, bench::kNone, args)) return 2;

  std::printf("Parallel branch-and-bound TSP (the paper's §5 workload)\n\n");

  apps::TspParams base;  // 15 cities, 2184 depth-4 prefix jobs
  std::printf("instance: %d cities, optimal tour (sequential check) = %lld\n\n",
              base.cities,
              static_cast<long long>(
                  apps::tsp_reference(base.cities, base.instance_seed)));

  metrics::RunReport report("parallel_tsp");
  report.set_config("cities", std::int64_t{base.cities});
  report.set_config("seed", std::uint64_t{base.run.seed});

  double t1 = 0.0;
  for (const std::size_t procs : {1UL, 8UL}) {
    for (const panda::Binding binding :
         {panda::Binding::kKernelSpace, panda::Binding::kUserSpace}) {
      apps::TspParams p = base;
      p.run.processors = procs;
      p.run.binding = binding;
      const apps::TspResult r = apps::run_tsp(p);
      const double secs = sim::to_sec(r.elapsed);
      if (procs == 1 && binding == panda::Binding::kKernelSpace) t1 = secs;
      const char* impl = binding == panda::Binding::kKernelSpace
                             ? "kernel-space"
                             : "user-space";
      std::printf("P=%-2zu %-12s  %7.1f s   best=%-4lld  jobs=%llu  "
                  "nodes=%llu  bound-updates=%llu%s\n",
                  procs, impl, secs, static_cast<long long>(r.best_cost),
                  static_cast<unsigned long long>(r.jobs),
                  static_cast<unsigned long long>(r.nodes_expanded),
                  static_cast<unsigned long long>(r.bound_updates),
                  t1 > 0.0 && procs > 1
                      ? (" (speedup " + std::to_string(t1 / secs) + ")").c_str()
                      : "");
      report.add_metric(
          "tsp." + std::string(impl) + ".p" + std::to_string(procs) + ".sec",
          secs, metrics::Better::kLower, "sec");
    }
  }

  std::printf("\nThe bound object is replicated (reads are free and local);\n"
              "only job fetches and bound improvements touch the network —\n"
              "which is why the protocol choice barely matters here (§5).\n");

  if (!args.json_path.empty() && !bench::write_report(report, args.json_path)) {
    return 1;
  }
  return 0;
}
