// Domain example: the paper's Travelling Salesman application end to end —
// replicated branch-and-bound over a 15-city instance (2184 jobs, as in §5),
// run on 1 and 8 processors on both protocol stacks.
//
//   $ ./build/examples/parallel_tsp
#include <cstdio>

#include "apps/tsp.h"

int main() {
  std::printf("Parallel branch-and-bound TSP (the paper's §5 workload)\n\n");

  apps::TspParams base;  // 15 cities, 2184 depth-4 prefix jobs
  std::printf("instance: %d cities, optimal tour (sequential check) = %lld\n\n",
              base.cities,
              static_cast<long long>(
                  apps::tsp_reference(base.cities, base.instance_seed)));

  double t1 = 0.0;
  for (const std::size_t procs : {1UL, 8UL}) {
    for (const panda::Binding binding :
         {panda::Binding::kKernelSpace, panda::Binding::kUserSpace}) {
      apps::TspParams p = base;
      p.run.processors = procs;
      p.run.binding = binding;
      const apps::TspResult r = apps::run_tsp(p);
      const double secs = sim::to_sec(r.elapsed);
      if (procs == 1 && binding == panda::Binding::kKernelSpace) t1 = secs;
      std::printf("P=%-2zu %-12s  %7.1f s   best=%-4lld  jobs=%llu  "
                  "nodes=%llu  bound-updates=%llu%s\n",
                  procs,
                  binding == panda::Binding::kKernelSpace ? "kernel-space"
                                                          : "user-space",
                  secs, static_cast<long long>(r.best_cost),
                  static_cast<unsigned long long>(r.jobs),
                  static_cast<unsigned long long>(r.nodes_expanded),
                  static_cast<unsigned long long>(r.bound_updates),
                  t1 > 0.0 && procs > 1
                      ? (" (speedup " + std::to_string(t1 / secs) + ")").c_str()
                      : "");
    }
  }

  std::printf("\nThe bound object is replicated (reads are free and local);\n"
              "only job fetches and bound improvements touch the network —\n"
              "which is why the protocol choice barely matters here (§5).\n");
  return 0;
}
