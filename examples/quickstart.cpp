// Quickstart: boot a simulated Amoeba pool, run an RPC and a totally-ordered
// group broadcast on both protocol stacks, and print what they cost.
//
//   $ ./build/examples/quickstart
//
// This touches the whole public API surface: World (nodes/kernels/network),
// make_panda (the two protocol bindings), RPC with reply-from-upcall, and
// blocking group send.
#include <cstdio>

#include "amoeba/world.h"
#include "panda/panda.h"

namespace {

using amoeba::Thread;
using panda::Binding;

void demo(Binding binding) {
  const char* name =
      binding == Binding::kKernelSpace ? "kernel-space" : "user-space";
  std::printf("--- %s protocols ---\n", name);

  // A 4-node processor pool on a simulated 10 Mbit/s Ethernet.
  amoeba::World world;
  world.add_nodes(4);

  panda::ClusterConfig cfg;
  cfg.binding = binding;
  cfg.nodes = {0, 1, 2, 3};
  cfg.sequencer = 0;
  std::vector<std::unique_ptr<panda::Panda>> pandas;
  for (amoeba::NodeId i = 0; i < 4; ++i) {
    pandas.push_back(panda::make_panda(world.kernel(i), cfg));
  }

  // Node 1 serves RPC requests: echo with a greeting.
  pandas[1]->set_rpc_handler(
      [&](Thread& upcall, panda::RpcTicket t, net::Payload req) -> sim::Co<void> {
        net::Reader r(req);
        net::Writer w;
        w.str("hello, " + r.str());
        co_await pandas[1]->rpc_reply(upcall, t, w.take());
      });

  // Everyone prints ordered group messages.
  int deliveries = 0;
  for (auto& p : pandas) {
    p->set_group_handler([&deliveries](Thread&, amoeba::NodeId sender,
                                       std::uint32_t seqno,
                                       net::Payload) -> sim::Co<void> {
      ++deliveries;
      (void)sender;
      (void)seqno;
      co_return;
    });
  }
  for (auto& p : pandas) p->start();

  // A client thread on node 0 does one RPC and one broadcast.
  Thread& client = world.kernel(0).create_thread("client");
  sim::spawn([](amoeba::World& w, panda::Panda& panda) -> sim::Co<void> {
    Thread& self = w.kernel(0).create_thread("demo");
    net::Writer req;
    req.str("amoeba");
    const sim::Time t0 = w.sim().now();
    panda::RpcReply reply = co_await panda.rpc(self, 1, req.take());
    const sim::Time rpc_time = w.sim().now() - t0;
    net::Reader r(reply.reply);
    std::printf("  rpc reply: \"%s\" in %.2f ms\n", r.str().c_str(),
                sim::to_ms(rpc_time));

    const sim::Time t1 = w.sim().now();
    co_await panda.group_send(self, net::Payload::zeros(64));
    std::printf("  group broadcast delivered (own copy back) in %.2f ms\n",
                sim::to_ms(w.sim().now() - t1));
  }(world, *pandas[0]));
  (void)client;

  world.sim().run();
  std::printf("  ordered deliveries across 4 members: %d\n\n", deliveries);
}

}  // namespace

int main() {
  std::printf("Quickstart: Panda on simulated Amoeba, both protocol stacks\n\n");
  demo(Binding::kKernelSpace);
  demo(Binding::kUserSpace);
  std::printf("The user-space stack is a little slower per primitive (Table 1)\n"
              "but identical in behaviour — and far more flexible (see the\n"
              "shared_objects example for what that buys the Orca runtime).\n");
  return 0;
}
