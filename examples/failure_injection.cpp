// Reliability demo: the protocols promise exactly-once RPC and gapless total
// order over an *unreliable* FLIP/Ethernet substrate. Here we drop 10% of
// all frames and watch both protocol stacks deliver anyway.
//
//   $ ./build/examples/failure_injection
#include <cstdio>
#include <vector>

#include "amoeba/world.h"
#include "panda/panda.h"

namespace {

using amoeba::Thread;
using panda::Binding;

void demo(Binding binding, double loss_rate) {
  amoeba::World world;
  world.add_nodes(4);
  // Drop frames at random on the shared segment (the frame still burns
  // bandwidth, like a real collision/corruption).
  sim::Rng loss_rng(12345);
  world.network().segment(0).set_loss_hook(
      [&loss_rng, loss_rate](const net::Frame&) {
        return loss_rng.bernoulli(loss_rate);
      });

  panda::ClusterConfig cfg;
  cfg.binding = binding;
  cfg.nodes = {0, 1, 2, 3};
  std::vector<std::unique_ptr<panda::Panda>> pandas;
  int rpc_executions = 0;
  std::vector<std::vector<std::uint32_t>> orders(4);
  for (amoeba::NodeId i = 0; i < 4; ++i) {
    pandas.push_back(panda::make_panda(world.kernel(i), cfg));
    pandas.back()->set_group_handler(
        [&orders, i](Thread&, amoeba::NodeId, std::uint32_t seqno,
                     net::Payload) -> sim::Co<void> {
          orders[i].push_back(seqno);
          co_return;
        });
  }
  pandas[1]->set_rpc_handler(
      [&](Thread& upcall, panda::RpcTicket t, net::Payload req) -> sim::Co<void> {
        ++rpc_executions;
        co_await pandas[1]->rpc_reply(upcall, t, std::move(req));
      });
  for (auto& p : pandas) p->start();

  int rpc_ok = 0;
  Thread& client = world.kernel(0).create_thread("client");
  sim::spawn([](panda::Panda& p, amoeba::World& w, int& ok) -> sim::Co<void> {
    Thread& self = w.kernel(0).create_thread("driver");
    for (int i = 0; i < 20; ++i) {
      panda::RpcReply r = co_await p.rpc(self, 1, net::Payload::zeros(64));
      if (r.status == panda::RpcStatus::kOk) ++ok;
      co_await p.group_send(self, net::Payload::zeros(64));
    }
  }(*pandas[0], world, rpc_ok));
  (void)client;
  world.sim().run();

  bool order_ok = true;
  for (int n = 1; n < 4; ++n) order_ok = order_ok && orders[n] == orders[0];
  std::printf("%-13s: %2d/20 RPCs ok, %d server executions (exactly-once), "
              "group order identical on all members: %s, took %.0f ms\n",
              binding == Binding::kKernelSpace ? "kernel-space" : "user-space",
              rpc_ok, rpc_executions, order_ok ? "yes" : "NO",
              sim::to_ms(world.sim().now()));
}

}  // namespace

int main() {
  std::printf("Dropping 10%% of all Ethernet frames; the reliability layers "
              "retransmit, deduplicate, and re-order.\n\n");
  demo(Binding::kKernelSpace, 0.10);
  demo(Binding::kUserSpace, 0.10);
  return 0;
}
