// Orca shared data-objects in action: a replicated counter (local reads,
// broadcast writes) and a single-copy guarded bounded buffer (remote
// invocations that block as continuations) — the two invocation paths whose
// cost profile drives the paper's application results.
//
//   $ ./build/examples/shared_objects
#include <cstdio>
#include <memory>

#include "amoeba/world.h"
#include "orca/rts.h"
#include "panda/panda.h"

namespace {

using orca::ObjectHints;
using orca::ObjectState;
using orca::OpDef;

struct CounterState final : ObjectState {
  std::int64_t value = 0;
};

struct QueueState final : ObjectState {
  std::deque<std::int64_t> items;
};

}  // namespace

int main() {
  std::printf("Orca shared data-objects on the user-space protocol stack\n\n");

  // -- Register the abstract data types (same program runs on every node).
  orca::TypeRegistry registry;

  orca::ObjectType counter("counter", [](const net::Payload&) {
    return std::make_unique<CounterState>();
  });
  const orca::OpId counter_read = counter.add_operation(
      {.name = "read",
       .is_write = false,
       .guard = nullptr,
       .apply =
           [](ObjectState& s, const net::Payload&) {
             net::Writer w;
             w.i64(static_cast<CounterState&>(s).value);
             return w.take();
           },
       .cost = 0});
  const orca::OpId counter_inc = counter.add_operation(
      {.name = "inc",
       .is_write = true,
       .guard = nullptr,
       .apply =
           [](ObjectState& s, const net::Payload&) {
             net::Writer w;
             w.i64(++static_cast<CounterState&>(s).value);
             return w.take();
           },
       .cost = sim::usec(2)});
  const orca::TypeId counter_type = registry.register_type(std::move(counter));

  orca::ObjectType queue("bounded-queue", [](const net::Payload&) {
    return std::make_unique<QueueState>();
  });
  const orca::OpId q_put = queue.add_operation(
      {.name = "put",
       .is_write = true,
       .guard =
           [](const ObjectState& s, const net::Payload&) {
             return static_cast<const QueueState&>(s).items.size() < 4;
           },
       .apply =
           [](ObjectState& s, const net::Payload& args) {
             net::Reader r(args);
             static_cast<QueueState&>(s).items.push_back(r.i64());
             return net::Payload();
           },
       .cost = sim::usec(5)});
  const orca::OpId q_get = queue.add_operation(
      {.name = "get",
       .is_write = true,
       .guard =
           [](const ObjectState& s, const net::Payload&) {
             return !static_cast<const QueueState&>(s).items.empty();
           },
       .apply =
           [](ObjectState& s, const net::Payload&) {
             auto& q = static_cast<QueueState&>(s);
             net::Writer w;
             w.i64(q.items.front());
             q.items.pop_front();
             return w.take();
           },
       .cost = sim::usec(5)});
  const orca::TypeId queue_type = registry.register_type(std::move(queue));

  // -- Boot a 3-node pool with an RTS on every node.
  amoeba::World world;
  world.add_nodes(3);
  panda::ClusterConfig cfg;
  cfg.binding = panda::Binding::kUserSpace;
  cfg.nodes = {0, 1, 2};
  std::vector<std::unique_ptr<panda::Panda>> pandas;
  std::vector<std::unique_ptr<orca::Rts>> rtses;
  for (amoeba::NodeId i = 0; i < 3; ++i) {
    pandas.push_back(panda::make_panda(world.kernel(i), cfg));
    rtses.push_back(std::make_unique<orca::Rts>(*pandas.back(), registry));
    rtses.back()->attach();
  }
  for (auto& p : pandas) p->start();

  // -- The application: a producer on node 0, a consumer on node 2, and a
  //    replicated hit counter everyone updates.
  orca::ObjHandle hits;
  orca::ObjHandle pipe;
  bool ready = false;

  rtses[0]->fork("producer", [&](orca::Process& p) -> sim::Co<void> {
    hits = co_await p.rts().create_object(
        p.thread(), counter_type, net::Payload(),
        ObjectHints{.expected_read_fraction = 0.9});  // -> replicated
    pipe = co_await p.rts().create_object(
        p.thread(), queue_type, net::Payload(),
        ObjectHints{.expected_read_fraction = 0.1});  // -> single copy here
    ready = true;
    for (int i = 1; i <= 5; ++i) {
      net::Writer w;
      w.i64(i * 100);
      (void)co_await p.invoke(pipe, q_put, w.take());  // guard: queue not full
      (void)co_await p.invoke(hits, counter_inc);
      std::printf("[%6.2f ms] producer put %d\n",
                  sim::to_ms(p.rts().panda().sim().now()), i * 100);
    }
  });

  rtses[2]->fork("consumer", [&](orca::Process& p) -> sim::Co<void> {
    while (!ready) co_await sim::delay(p.rts().panda().sim(), sim::msec(1));
    for (int i = 0; i < 5; ++i) {
      // Remote guarded operation: blocks (as a continuation at the owner)
      // until the producer fills the queue.
      net::Payload item = co_await p.invoke(pipe, q_get);
      net::Reader r(item);
      (void)co_await p.invoke(hits, counter_inc);
      std::printf("[%6.2f ms] consumer got %lld\n",
                  sim::to_ms(p.rts().panda().sim().now()),
                  static_cast<long long>(r.i64()));
    }
    // Replicated read: local, no communication.
    net::Payload total = co_await p.invoke(hits, counter_read);
    net::Reader r(total);
    std::printf("[%6.2f ms] hit counter (read locally) = %lld\n",
                sim::to_ms(p.rts().panda().sim().now()),
                static_cast<long long>(r.i64()));
  });

  world.sim().run();
  std::printf("\ncontinuations created at the owner: %llu (remote guarded gets"
              " that had to wait)\n",
              static_cast<unsigned long long>(rtses[0]->continuations_created()));
  return 0;
}
