
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/amoeba/flip_test.cpp" "tests/CMakeFiles/amoeba_test.dir/amoeba/flip_test.cpp.o" "gcc" "tests/CMakeFiles/amoeba_test.dir/amoeba/flip_test.cpp.o.d"
  "/root/repo/tests/amoeba/group_test.cpp" "tests/CMakeFiles/amoeba_test.dir/amoeba/group_test.cpp.o" "gcc" "tests/CMakeFiles/amoeba_test.dir/amoeba/group_test.cpp.o.d"
  "/root/repo/tests/amoeba/kernel_test.cpp" "tests/CMakeFiles/amoeba_test.dir/amoeba/kernel_test.cpp.o" "gcc" "tests/CMakeFiles/amoeba_test.dir/amoeba/kernel_test.cpp.o.d"
  "/root/repo/tests/amoeba/rpc_test.cpp" "tests/CMakeFiles/amoeba_test.dir/amoeba/rpc_test.cpp.o" "gcc" "tests/CMakeFiles/amoeba_test.dir/amoeba/rpc_test.cpp.o.d"
  "/root/repo/tests/amoeba/world_test.cpp" "tests/CMakeFiles/amoeba_test.dir/amoeba/world_test.cpp.o" "gcc" "tests/CMakeFiles/amoeba_test.dir/amoeba/world_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/amoeba/CMakeFiles/amoeba.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
