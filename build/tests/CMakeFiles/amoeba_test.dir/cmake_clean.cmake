file(REMOVE_RECURSE
  "CMakeFiles/amoeba_test.dir/amoeba/flip_test.cpp.o"
  "CMakeFiles/amoeba_test.dir/amoeba/flip_test.cpp.o.d"
  "CMakeFiles/amoeba_test.dir/amoeba/group_test.cpp.o"
  "CMakeFiles/amoeba_test.dir/amoeba/group_test.cpp.o.d"
  "CMakeFiles/amoeba_test.dir/amoeba/kernel_test.cpp.o"
  "CMakeFiles/amoeba_test.dir/amoeba/kernel_test.cpp.o.d"
  "CMakeFiles/amoeba_test.dir/amoeba/rpc_test.cpp.o"
  "CMakeFiles/amoeba_test.dir/amoeba/rpc_test.cpp.o.d"
  "CMakeFiles/amoeba_test.dir/amoeba/world_test.cpp.o"
  "CMakeFiles/amoeba_test.dir/amoeba/world_test.cpp.o.d"
  "amoeba_test"
  "amoeba_test.pdb"
  "amoeba_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amoeba_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
