# Empty compiler generated dependencies file for amoeba_test.
# This may be replaced when dependencies are built.
