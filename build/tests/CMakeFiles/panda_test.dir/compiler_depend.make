# Empty compiler generated dependencies file for panda_test.
# This may be replaced when dependencies are built.
