file(REMOVE_RECURSE
  "CMakeFiles/panda_test.dir/panda/pan_protocols_test.cpp.o"
  "CMakeFiles/panda_test.dir/panda/pan_protocols_test.cpp.o.d"
  "CMakeFiles/panda_test.dir/panda/pan_sys_test.cpp.o"
  "CMakeFiles/panda_test.dir/panda/pan_sys_test.cpp.o.d"
  "CMakeFiles/panda_test.dir/panda/panda_test.cpp.o"
  "CMakeFiles/panda_test.dir/panda/panda_test.cpp.o.d"
  "CMakeFiles/panda_test.dir/panda/size_sweep_test.cpp.o"
  "CMakeFiles/panda_test.dir/panda/size_sweep_test.cpp.o.d"
  "panda_test"
  "panda_test.pdb"
  "panda_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/panda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
