
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/panda/pan_protocols_test.cpp" "tests/CMakeFiles/panda_test.dir/panda/pan_protocols_test.cpp.o" "gcc" "tests/CMakeFiles/panda_test.dir/panda/pan_protocols_test.cpp.o.d"
  "/root/repo/tests/panda/pan_sys_test.cpp" "tests/CMakeFiles/panda_test.dir/panda/pan_sys_test.cpp.o" "gcc" "tests/CMakeFiles/panda_test.dir/panda/pan_sys_test.cpp.o.d"
  "/root/repo/tests/panda/panda_test.cpp" "tests/CMakeFiles/panda_test.dir/panda/panda_test.cpp.o" "gcc" "tests/CMakeFiles/panda_test.dir/panda/panda_test.cpp.o.d"
  "/root/repo/tests/panda/size_sweep_test.cpp" "tests/CMakeFiles/panda_test.dir/panda/size_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/panda_test.dir/panda/size_sweep_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/panda/CMakeFiles/panda.dir/DependInfo.cmake"
  "/root/repo/build/src/amoeba/CMakeFiles/amoeba.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
