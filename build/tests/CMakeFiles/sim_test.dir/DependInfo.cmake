
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/co_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/co_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/co_test.cpp.o.d"
  "/root/repo/tests/sim/cpu_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/cpu_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/cpu_test.cpp.o.d"
  "/root/repo/tests/sim/ledger_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/ledger_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/ledger_test.cpp.o.d"
  "/root/repo/tests/sim/rng_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/rng_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/rng_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/simulator_test.cpp.o.d"
  "/root/repo/tests/sim/sync_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/sync_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/sync_test.cpp.o.d"
  "/root/repo/tests/sim/timer_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/timer_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/timer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
