file(REMOVE_RECURSE
  "CMakeFiles/orca_test.dir/orca/placement_test.cpp.o"
  "CMakeFiles/orca_test.dir/orca/placement_test.cpp.o.d"
  "CMakeFiles/orca_test.dir/orca/rts_test.cpp.o"
  "CMakeFiles/orca_test.dir/orca/rts_test.cpp.o.d"
  "orca_test"
  "orca_test.pdb"
  "orca_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
