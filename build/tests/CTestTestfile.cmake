# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/amoeba_test[1]_include.cmake")
include("/root/repo/build/tests/panda_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
include("/root/repo/build/tests/orca_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
