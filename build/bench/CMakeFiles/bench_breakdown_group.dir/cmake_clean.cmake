file(REMOVE_RECURSE
  "CMakeFiles/bench_breakdown_group.dir/bench_breakdown_group.cpp.o"
  "CMakeFiles/bench_breakdown_group.dir/bench_breakdown_group.cpp.o.d"
  "bench_breakdown_group"
  "bench_breakdown_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_breakdown_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
