# Empty dependencies file for bench_breakdown_group.
# This may be replaced when dependencies are built.
