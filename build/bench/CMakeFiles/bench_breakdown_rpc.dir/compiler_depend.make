# Empty compiler generated dependencies file for bench_breakdown_rpc.
# This may be replaced when dependencies are built.
