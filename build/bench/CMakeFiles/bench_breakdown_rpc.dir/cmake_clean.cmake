file(REMOVE_RECURSE
  "CMakeFiles/bench_breakdown_rpc.dir/bench_breakdown_rpc.cpp.o"
  "CMakeFiles/bench_breakdown_rpc.dir/bench_breakdown_rpc.cpp.o.d"
  "bench_breakdown_rpc"
  "bench_breakdown_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_breakdown_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
