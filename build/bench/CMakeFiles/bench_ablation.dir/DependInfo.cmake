
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation.cpp" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/core.dir/DependInfo.cmake"
  "/root/repo/build/src/orca/CMakeFiles/orca.dir/DependInfo.cmake"
  "/root/repo/build/src/panda/CMakeFiles/panda.dir/DependInfo.cmake"
  "/root/repo/build/src/amoeba/CMakeFiles/amoeba.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
