# Empty dependencies file for failure_injection.
# This may be replaced when dependencies are built.
