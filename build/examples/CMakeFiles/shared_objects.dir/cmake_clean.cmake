file(REMOVE_RECURSE
  "CMakeFiles/shared_objects.dir/shared_objects.cpp.o"
  "CMakeFiles/shared_objects.dir/shared_objects.cpp.o.d"
  "shared_objects"
  "shared_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
