# Empty dependencies file for shared_objects.
# This may be replaced when dependencies are built.
