# Empty compiler generated dependencies file for parallel_tsp.
# This may be replaced when dependencies are built.
