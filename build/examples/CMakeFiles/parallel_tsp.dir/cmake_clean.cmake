file(REMOVE_RECURSE
  "CMakeFiles/parallel_tsp.dir/parallel_tsp.cpp.o"
  "CMakeFiles/parallel_tsp.dir/parallel_tsp.cpp.o.d"
  "parallel_tsp"
  "parallel_tsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_tsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
