file(REMOVE_RECURSE
  "CMakeFiles/sim.dir/cpu.cpp.o"
  "CMakeFiles/sim.dir/cpu.cpp.o.d"
  "CMakeFiles/sim.dir/ledger.cpp.o"
  "CMakeFiles/sim.dir/ledger.cpp.o.d"
  "CMakeFiles/sim.dir/rng.cpp.o"
  "CMakeFiles/sim.dir/rng.cpp.o.d"
  "CMakeFiles/sim.dir/simulator.cpp.o"
  "CMakeFiles/sim.dir/simulator.cpp.o.d"
  "CMakeFiles/sim.dir/sync.cpp.o"
  "CMakeFiles/sim.dir/sync.cpp.o.d"
  "CMakeFiles/sim.dir/timer.cpp.o"
  "CMakeFiles/sim.dir/timer.cpp.o.d"
  "libsim.a"
  "libsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
