file(REMOVE_RECURSE
  "CMakeFiles/amoeba.dir/flip.cpp.o"
  "CMakeFiles/amoeba.dir/flip.cpp.o.d"
  "CMakeFiles/amoeba.dir/group.cpp.o"
  "CMakeFiles/amoeba.dir/group.cpp.o.d"
  "CMakeFiles/amoeba.dir/kernel.cpp.o"
  "CMakeFiles/amoeba.dir/kernel.cpp.o.d"
  "CMakeFiles/amoeba.dir/rpc.cpp.o"
  "CMakeFiles/amoeba.dir/rpc.cpp.o.d"
  "CMakeFiles/amoeba.dir/world.cpp.o"
  "CMakeFiles/amoeba.dir/world.cpp.o.d"
  "libamoeba.a"
  "libamoeba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amoeba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
