
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amoeba/flip.cpp" "src/amoeba/CMakeFiles/amoeba.dir/flip.cpp.o" "gcc" "src/amoeba/CMakeFiles/amoeba.dir/flip.cpp.o.d"
  "/root/repo/src/amoeba/group.cpp" "src/amoeba/CMakeFiles/amoeba.dir/group.cpp.o" "gcc" "src/amoeba/CMakeFiles/amoeba.dir/group.cpp.o.d"
  "/root/repo/src/amoeba/kernel.cpp" "src/amoeba/CMakeFiles/amoeba.dir/kernel.cpp.o" "gcc" "src/amoeba/CMakeFiles/amoeba.dir/kernel.cpp.o.d"
  "/root/repo/src/amoeba/rpc.cpp" "src/amoeba/CMakeFiles/amoeba.dir/rpc.cpp.o" "gcc" "src/amoeba/CMakeFiles/amoeba.dir/rpc.cpp.o.d"
  "/root/repo/src/amoeba/world.cpp" "src/amoeba/CMakeFiles/amoeba.dir/world.cpp.o" "gcc" "src/amoeba/CMakeFiles/amoeba.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
