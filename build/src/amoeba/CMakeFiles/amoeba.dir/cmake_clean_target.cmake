file(REMOVE_RECURSE
  "libamoeba.a"
)
