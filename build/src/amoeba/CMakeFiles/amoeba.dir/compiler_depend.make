# Empty compiler generated dependencies file for amoeba.
# This may be replaced when dependencies are built.
