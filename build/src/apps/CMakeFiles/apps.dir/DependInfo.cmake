
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/ab.cpp" "src/apps/CMakeFiles/apps.dir/ab.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/ab.cpp.o.d"
  "/root/repo/src/apps/asp.cpp" "src/apps/CMakeFiles/apps.dir/asp.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/asp.cpp.o.d"
  "/root/repo/src/apps/common.cpp" "src/apps/CMakeFiles/apps.dir/common.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/common.cpp.o.d"
  "/root/repo/src/apps/exchange.cpp" "src/apps/CMakeFiles/apps.dir/exchange.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/exchange.cpp.o.d"
  "/root/repo/src/apps/leq.cpp" "src/apps/CMakeFiles/apps.dir/leq.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/leq.cpp.o.d"
  "/root/repo/src/apps/rl.cpp" "src/apps/CMakeFiles/apps.dir/rl.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/rl.cpp.o.d"
  "/root/repo/src/apps/sor.cpp" "src/apps/CMakeFiles/apps.dir/sor.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/sor.cpp.o.d"
  "/root/repo/src/apps/tsp.cpp" "src/apps/CMakeFiles/apps.dir/tsp.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/tsp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/orca/CMakeFiles/orca.dir/DependInfo.cmake"
  "/root/repo/build/src/panda/CMakeFiles/panda.dir/DependInfo.cmake"
  "/root/repo/build/src/amoeba/CMakeFiles/amoeba.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
