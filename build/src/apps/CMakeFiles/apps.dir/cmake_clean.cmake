file(REMOVE_RECURSE
  "CMakeFiles/apps.dir/ab.cpp.o"
  "CMakeFiles/apps.dir/ab.cpp.o.d"
  "CMakeFiles/apps.dir/asp.cpp.o"
  "CMakeFiles/apps.dir/asp.cpp.o.d"
  "CMakeFiles/apps.dir/common.cpp.o"
  "CMakeFiles/apps.dir/common.cpp.o.d"
  "CMakeFiles/apps.dir/exchange.cpp.o"
  "CMakeFiles/apps.dir/exchange.cpp.o.d"
  "CMakeFiles/apps.dir/leq.cpp.o"
  "CMakeFiles/apps.dir/leq.cpp.o.d"
  "CMakeFiles/apps.dir/rl.cpp.o"
  "CMakeFiles/apps.dir/rl.cpp.o.d"
  "CMakeFiles/apps.dir/sor.cpp.o"
  "CMakeFiles/apps.dir/sor.cpp.o.d"
  "CMakeFiles/apps.dir/tsp.cpp.o"
  "CMakeFiles/apps.dir/tsp.cpp.o.d"
  "libapps.a"
  "libapps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
