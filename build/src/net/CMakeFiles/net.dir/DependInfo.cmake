
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/buffer.cpp" "src/net/CMakeFiles/net.dir/buffer.cpp.o" "gcc" "src/net/CMakeFiles/net.dir/buffer.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/net.dir/network.cpp.o.d"
  "/root/repo/src/net/nic.cpp" "src/net/CMakeFiles/net.dir/nic.cpp.o" "gcc" "src/net/CMakeFiles/net.dir/nic.cpp.o.d"
  "/root/repo/src/net/segment.cpp" "src/net/CMakeFiles/net.dir/segment.cpp.o" "gcc" "src/net/CMakeFiles/net.dir/segment.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "src/net/CMakeFiles/net.dir/switch.cpp.o" "gcc" "src/net/CMakeFiles/net.dir/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
