file(REMOVE_RECURSE
  "CMakeFiles/net.dir/buffer.cpp.o"
  "CMakeFiles/net.dir/buffer.cpp.o.d"
  "CMakeFiles/net.dir/network.cpp.o"
  "CMakeFiles/net.dir/network.cpp.o.d"
  "CMakeFiles/net.dir/nic.cpp.o"
  "CMakeFiles/net.dir/nic.cpp.o.d"
  "CMakeFiles/net.dir/segment.cpp.o"
  "CMakeFiles/net.dir/segment.cpp.o.d"
  "CMakeFiles/net.dir/switch.cpp.o"
  "CMakeFiles/net.dir/switch.cpp.o.d"
  "libnet.a"
  "libnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
