file(REMOVE_RECURSE
  "libpanda.a"
)
