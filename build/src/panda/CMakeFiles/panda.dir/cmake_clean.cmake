file(REMOVE_RECURSE
  "CMakeFiles/panda.dir/pan_group.cpp.o"
  "CMakeFiles/panda.dir/pan_group.cpp.o.d"
  "CMakeFiles/panda.dir/pan_rpc.cpp.o"
  "CMakeFiles/panda.dir/pan_rpc.cpp.o.d"
  "CMakeFiles/panda.dir/pan_sys.cpp.o"
  "CMakeFiles/panda.dir/pan_sys.cpp.o.d"
  "CMakeFiles/panda.dir/panda.cpp.o"
  "CMakeFiles/panda.dir/panda.cpp.o.d"
  "libpanda.a"
  "libpanda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/panda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
