
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/panda/pan_group.cpp" "src/panda/CMakeFiles/panda.dir/pan_group.cpp.o" "gcc" "src/panda/CMakeFiles/panda.dir/pan_group.cpp.o.d"
  "/root/repo/src/panda/pan_rpc.cpp" "src/panda/CMakeFiles/panda.dir/pan_rpc.cpp.o" "gcc" "src/panda/CMakeFiles/panda.dir/pan_rpc.cpp.o.d"
  "/root/repo/src/panda/pan_sys.cpp" "src/panda/CMakeFiles/panda.dir/pan_sys.cpp.o" "gcc" "src/panda/CMakeFiles/panda.dir/pan_sys.cpp.o.d"
  "/root/repo/src/panda/panda.cpp" "src/panda/CMakeFiles/panda.dir/panda.cpp.o" "gcc" "src/panda/CMakeFiles/panda.dir/panda.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/amoeba/CMakeFiles/amoeba.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
