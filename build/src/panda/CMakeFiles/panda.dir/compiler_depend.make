# Empty compiler generated dependencies file for panda.
# This may be replaced when dependencies are built.
