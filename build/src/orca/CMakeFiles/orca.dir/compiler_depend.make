# Empty compiler generated dependencies file for orca.
# This may be replaced when dependencies are built.
