file(REMOVE_RECURSE
  "CMakeFiles/orca.dir/rts.cpp.o"
  "CMakeFiles/orca.dir/rts.cpp.o.d"
  "liborca.a"
  "liborca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
