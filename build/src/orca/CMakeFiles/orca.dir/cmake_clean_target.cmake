file(REMOVE_RECURSE
  "liborca.a"
)
